//! The inverted index and its attribute statistics.
//!
//! Storage layout: one [`TermEntry`] per dictionary term holding *parallel,
//! attribute-sorted* vectors of attributes and postings. The layout serves
//! the interpretation generator's hot paths directly:
//!
//! * [`InvertedIndex::attrs_containing`] returns a borrowed slice — no
//!   allocation, deterministic order — because candidate harvesting runs
//!   once per distinct query term per query;
//! * [`InvertedIndex::postings`] is a binary search in a short vector
//!   (terms rarely occur in more than a handful of attributes);
//! * [`InvertedIndex::rows_with_all`] and [`InvertedIndex::joint_atf`]
//!   intersect postings by k-way leapfrog merge over the delta-decoded
//!   lists, never building per-call hash sets;
//!   [`InvertedIndex::has_row_with_all`] is the early-exit variant backing
//!   the generator's non-emptiness cache.
//!
//! Postings are packed per an adaptive, canonical [`PostingsRepr`]: sparse
//! lists as delta-encoded varints, dense lists as fixed-width bitmap blocks
//! ([`TermAttrEntry`]), decoded on read. The repr choice is a pure function
//! of the posting set, so incremental maintenance, rebuilds, and snapshots
//! all agree byte-for-byte; the on-disk snapshot stores the packed bytes
//! verbatim behind a per-entry repr tag.

use crate::token::Tokenizer;
use keybridge_relstore::snapshot::{
    len_u32, put_section, put_str, put_u32, put_u64, put_u8, put_varu32, put_varu64, Cursor,
    SnapshotError,
};
use keybridge_relstore::{AttrId, AttrRef, Database, RowId, TableId};
use std::collections::HashMap;

/// Physical layout of one [`TermAttrEntry`]'s packed buffer.
///
/// The repr is a *canonical* function of the logical posting set: sparse
/// lists delta-encode row gaps, dense lists — at least [`BITMAP_MIN_DF`]
/// postings covering at least 1/[`BITMAP_DENSITY`] of their row span —
/// switch to a fixed-width bitmap block. Because the choice depends only on
/// the final set, never on mutation order, splice-equals-rebuild and
/// snapshot canonicality survive the adaptive layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PostingsRepr {
    /// Delta-encoded LEB128 `(row gap, tf)` pairs.
    #[default]
    Gaps,
    /// `varu32 base, varu32 nwords`, then `nwords` little-endian `u64`
    /// words of row-presence bits (bit `i` set = row `base + i` present),
    /// then `df` LEB128 term frequencies in ascending row order.
    Bitmap,
}

/// The bitmap repr needs at least this many postings...
const BITMAP_MIN_DF: u32 = 16;
/// ...covering at least `1 / BITMAP_DENSITY` of their row span
/// (`df * BITMAP_DENSITY >= span`). At the threshold a bitmap costs ~4
/// bytes of words per posting, comfortably under the 8-byte naive codec.
const BITMAP_DENSITY: u64 = 32;

/// Postings of one term within one attribute: row-sorted `(row, tf)` pairs,
/// packed per [`PostingsRepr`] and decoded on read.
///
/// The packed layout is a *canonical* function of the logical postings —
/// both the repr choice and the bytes within each repr are determined by
/// the final set alone. Appends in row order extend the buffer in place
/// (re-encoding only when the append flips the canonical repr);
/// out-of-order splices decode, merge, and re-encode, so an incrementally
/// maintained entry is byte-identical to one rebuilt from scratch, and the
/// snapshot inherits that guarantee by storing the packed bytes verbatim.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermAttrEntry {
    /// Packed postings, laid out per `repr`.
    packed: Vec<u8>,
    /// Physical layout of `packed` — always canonical for the stored set.
    repr: PostingsRepr,
    /// Number of rows containing the term (document frequency).
    df: u32,
    /// Row id of the final posting — the append fast-path base; 0 when empty.
    last: u32,
    /// Total occurrences of the term across all rows of this attribute.
    pub occurrences: u64,
}

/// Decoding iterator over a packed postings buffer: yields `(row, tf)` in
/// ascending row order, whatever the entry's repr.
#[derive(Debug, Clone)]
pub struct Postings<'a> {
    cur: Cur<'a>,
}

#[derive(Debug, Clone)]
enum Cur<'a> {
    Gaps {
        bytes: &'a [u8],
        pos: usize,
        prev: u32,
        started: bool,
    },
    Bitmap {
        base: u32,
        words: &'a [u8],
        tfs: &'a [u8],
        tf_pos: usize,
        /// Next bit index to examine.
        bit: usize,
    },
}

impl Iterator for Postings<'_> {
    type Item = (RowId, u32);

    fn next(&mut self) -> Option<(RowId, u32)> {
        match &mut self.cur {
            Cur::Gaps {
                bytes,
                pos,
                prev,
                started,
            } => {
                if *pos >= bytes.len() {
                    return None;
                }
                let delta = read_varu32(bytes, pos);
                let row = if *started { *prev + delta } else { delta };
                *started = true;
                *prev = row;
                let tf = read_varu32(bytes, pos);
                Some((RowId(row), tf))
            }
            Cur::Bitmap {
                base,
                words,
                tfs,
                tf_pos,
                bit,
            } => {
                let nbits = words.len() * 8;
                while *bit < nbits {
                    let byte = *bit / 8;
                    let masked = words[byte] & (0xFFu8 << (*bit % 8));
                    if masked != 0 {
                        let b = byte * 8 + masked.trailing_zeros() as usize;
                        *bit = b + 1;
                        let tf = read_varu32(tfs, tf_pos);
                        return Some((RowId(*base + b as u32), tf));
                    }
                    *bit = (byte + 1) * 8;
                }
                None
            }
        }
    }
}

impl Postings<'_> {
    /// First posting with row `>= target`, consuming it — the leapfrog
    /// probe. Gap lists scan linearly (decoding is the only way forward);
    /// bitmap lists jump straight to the target's bit, *skipping* the
    /// overleapt tf varints instead of decoding them.
    pub fn seek(&mut self, target: RowId) -> Option<(RowId, u32)> {
        if let Cur::Bitmap {
            base,
            words,
            tfs,
            tf_pos,
            bit,
        } = &mut self.cur
        {
            let tbit = target.0.saturating_sub(*base) as usize;
            if tbit > *bit {
                let skipped = count_set_bits(words, *bit, tbit.min(words.len() * 8));
                skip_varints(tfs, tf_pos, skipped);
                *bit = tbit;
            }
            return self.next();
        }
        loop {
            let h = self.next()?;
            if h.0 >= target {
                return Some(h);
            }
        }
    }
}

/// Set bits of `words` in bit range `[from, to)`.
fn count_set_bits(words: &[u8], from: usize, to: usize) -> usize {
    let mut n = 0;
    let mut bit = from;
    while bit < to {
        let byte = bit / 8;
        let end = ((byte + 1) * 8).min(to);
        let mut mask = words[byte] >> (bit % 8);
        if end - bit < 8 {
            mask &= (1u8 << (end - bit)) - 1;
        }
        n += mask.count_ones() as usize;
        bit = end;
    }
    n
}

/// Advance `pos` past `n` LEB128 varints without decoding their values.
fn skip_varints(bytes: &[u8], pos: &mut usize, n: usize) {
    for _ in 0..n {
        while bytes[*pos] & 0x80 != 0 {
            *pos += 1;
        }
        *pos += 1;
    }
}

/// Encoded length of `v` as a LEB128 varint.
fn varu32_len(v: u32) -> usize {
    let mut n = 1;
    let mut v = v >> 7;
    while v != 0 {
        n += 1;
        v >>= 7;
    }
    n
}

/// Overwrite the varint at `pos` with `v` — caller guarantees the encoded
/// lengths match (the in-place bitmap append checks before patching).
fn write_varu32_at(buf: &mut [u8], pos: usize, v: u32) {
    let mut tmp = Vec::with_capacity(5);
    put_varu32(&mut tmp, v);
    buf[pos..pos + tmp.len()].copy_from_slice(&tmp);
}

/// Decode one LEB128 `u32` from a trusted in-memory postings buffer.
#[inline]
fn read_varu32(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Bounds- and canonicality-checked LEB128 `u32` decode for *untrusted*
/// snapshot bytes.
fn checked_varu32(bytes: &[u8], pos: &mut usize) -> Result<u32, SnapshotError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| SnapshotError::Corrupt("truncated packed postings".into()))?;
        *pos += 1;
        if shift == 28 && (b & 0xF0) != 0 {
            return Err(SnapshotError::Corrupt(
                "packed postings varint exceeds u32".into(),
            ));
        }
        v |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl TermAttrEntry {
    /// Number of rows containing the term (document frequency).
    pub fn df(&self) -> usize {
        self.df as usize
    }

    /// Physical layout of the packed buffer.
    pub fn repr(&self) -> PostingsRepr {
        self.repr
    }

    /// The canonical repr of a set with `df` postings spanning rows
    /// `first..=last` — a pure function of the final set, so incremental
    /// maintenance and from-scratch rebuilds always agree on the layout.
    fn repr_for(df: u32, first: u32, last: u32) -> PostingsRepr {
        let span = (last - first) as u64 + 1;
        if df >= BITMAP_MIN_DF && df as u64 * BITMAP_DENSITY >= span {
            PostingsRepr::Bitmap
        } else {
            PostingsRepr::Gaps
        }
    }

    /// Row id of the first posting. Both reprs lead with it: the gaps
    /// layout stores it verbatim as the first delta, the bitmap layout as
    /// its base.
    fn first_row(&self) -> u32 {
        debug_assert!(self.df > 0);
        let mut pos = 0;
        read_varu32(&self.packed, &mut pos)
    }

    /// Whether `repr` is the canonical layout for the stored set.
    fn is_canonical(&self) -> bool {
        self.df == 0 || Self::repr_for(self.df, self.first_row(), self.last) == self.repr
    }

    /// `(base, words, tfs)` of a bitmap-repr entry, `None` for gaps.
    fn bitmap_parts(&self) -> Option<(u32, &[u8], &[u8])> {
        if self.repr != PostingsRepr::Bitmap {
            return None;
        }
        let mut pos = 0;
        let base = read_varu32(&self.packed, &mut pos);
        let nwords = read_varu32(&self.packed, &mut pos) as usize;
        let words_end = pos + nwords * 8;
        Some((
            base,
            &self.packed[pos..words_end],
            &self.packed[words_end..],
        ))
    }

    /// Build the canonical entry holding exactly `pairs` (strictly
    /// row-sorted): picks the repr once from the final set and encodes it
    /// in one pass. This is the one re-encode routine every splice and
    /// repr conversion funnels through.
    pub fn from_pairs(pairs: &[(RowId, u32)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be strictly row-sorted"
        );
        let mut e = TermAttrEntry::default();
        if pairs.is_empty() {
            return e;
        }
        let first = pairs[0].0 .0;
        let last = pairs[pairs.len() - 1].0 .0;
        e.df = pairs.len() as u32;
        e.last = last;
        e.occurrences = pairs.iter().map(|&(_, tf)| tf as u64).sum();
        e.repr = Self::repr_for(e.df, first, last);
        match e.repr {
            PostingsRepr::Gaps => {
                let mut prev = 0;
                for (i, &(r, tf)) in pairs.iter().enumerate() {
                    put_varu32(&mut e.packed, if i == 0 { r.0 } else { r.0 - prev });
                    put_varu32(&mut e.packed, tf);
                    prev = r.0;
                }
            }
            PostingsRepr::Bitmap => {
                put_varu32(&mut e.packed, first);
                let nwords = (last - first) as usize / 64 + 1;
                put_varu32(&mut e.packed, nwords as u32);
                let words_start = e.packed.len();
                e.packed.resize(words_start + nwords * 8, 0);
                for &(r, _) in pairs {
                    let bit = (r.0 - first) as usize;
                    e.packed[words_start + bit / 8] |= 1 << (bit % 8);
                }
                for &(_, tf) in pairs {
                    put_varu32(&mut e.packed, tf);
                }
            }
        }
        e
    }

    /// Decode and rebuild through [`Self::from_pairs`] — the repr
    /// conversion path.
    fn reencode(&mut self) {
        let pairs: Vec<(RowId, u32)> = self.rows().collect();
        *self = Self::from_pairs(&pairs);
    }

    /// Iterate the `(row, tf)` postings in ascending row order, decoding the
    /// packed buffer on the fly.
    pub fn rows(&self) -> Postings<'_> {
        match self.bitmap_parts() {
            Some((base, words, tfs)) => Postings {
                cur: Cur::Bitmap {
                    base,
                    words,
                    tfs,
                    tf_pos: 0,
                    bit: 0,
                },
            },
            None => Postings {
                cur: Cur::Gaps {
                    bytes: &self.packed,
                    pos: 0,
                    prev: 0,
                    started: false,
                },
            },
        }
    }

    /// Term frequency in `row`. Bitmap entries answer with one bit test
    /// plus a rank into the tf stream; gap entries decode-scan and exit at
    /// the first row past the probe.
    pub fn tf(&self, row: RowId) -> Option<u32> {
        if let Some((base, words, tfs)) = self.bitmap_parts() {
            if row.0 < base || row.0 > self.last {
                return None;
            }
            let bit = (row.0 - base) as usize;
            if words[bit / 8] & (1 << (bit % 8)) == 0 {
                return None;
            }
            let mut pos = 0;
            skip_varints(tfs, &mut pos, count_set_bits(words, 0, bit));
            return Some(read_varu32(tfs, &mut pos));
        }
        for (r, tf) in self.rows() {
            if r == row {
                return Some(tf);
            }
            if r > row {
                return None;
            }
        }
        None
    }

    /// Append a posting known to follow every stored row — the fresh-insert
    /// fast path, since new rows carry the largest id of their table. The
    /// entry stays canonical: an append that flips the repr (density
    /// crossing the bitmap threshold in either direction) re-encodes.
    fn push(&mut self, row: RowId, tf: u32) {
        debug_assert!(self.df == 0 || row.0 > self.last, "push must stay sorted");
        match self.repr {
            PostingsRepr::Gaps => {
                let delta = if self.df == 0 {
                    row.0
                } else {
                    row.0 - self.last
                };
                put_varu32(&mut self.packed, delta);
                put_varu32(&mut self.packed, tf);
                self.last = row.0;
                self.df += 1;
                self.occurrences += tf as u64;
                if !self.is_canonical() {
                    self.reencode();
                }
            }
            PostingsRepr::Bitmap => self.push_bitmap(row, tf),
        }
    }

    /// Append onto a bitmap entry: patch the word block and tf stream in
    /// place when the repr survives the append, otherwise fall back to a
    /// full canonical re-encode.
    fn push_bitmap(&mut self, row: RowId, tf: u32) {
        let mut pos = 0;
        let base = read_varu32(&self.packed, &mut pos);
        let nwords_pos = pos;
        let nwords = read_varu32(&self.packed, &mut pos) as usize;
        let words_start = pos;
        let new_bit = (row.0 - base) as usize;
        let new_nwords = (new_bit / 64 + 1).max(nwords);
        // Three things can force a re-encode: the append flips the
        // canonical repr back to gaps (a far-away row craters density), the
        // `nwords` varint itself grows, or nothing — only the last stays an
        // in-place patch.
        if Self::repr_for(self.df + 1, base, row.0) != PostingsRepr::Bitmap
            || varu32_len(new_nwords as u32) != varu32_len(nwords as u32)
        {
            let mut pairs: Vec<(RowId, u32)> = self.rows().collect();
            pairs.push((row, tf));
            *self = Self::from_pairs(&pairs);
            return;
        }
        write_varu32_at(&mut self.packed, nwords_pos, new_nwords as u32);
        if new_nwords > nwords {
            let tf_start = words_start + nwords * 8;
            let extra = (new_nwords - nwords) * 8;
            self.packed
                .splice(tf_start..tf_start, std::iter::repeat_n(0u8, extra));
        }
        self.packed[words_start + new_bit / 8] |= 1 << (new_bit % 8);
        put_varu32(&mut self.packed, tf);
        self.df += 1;
        self.last = row.0;
        self.occurrences += tf as u64;
    }

    /// Add `tf` occurrences of the term in `row`, wherever the row sorts:
    /// appends in place when the row is new and largest, otherwise decodes,
    /// splices, and re-encodes so the packed bytes stay canonical.
    fn upsert(&mut self, row: RowId, tf: u32) {
        if self.df == 0 || row.0 > self.last {
            self.push(row, tf);
            return;
        }
        let mut rows: Vec<(RowId, u32)> = self.rows().collect();
        match rows.binary_search_by_key(&row, |&(r, _)| r) {
            Ok(i) => rows[i].1 += tf, // defensive: re-indexed row
            Err(i) => rows.insert(i, (row, tf)),
        }
        *self = Self::from_pairs(&rows);
    }

    /// Convert to the canonical repr if the stored layout disagrees — the
    /// version-2 snapshot upgrade path (v2 predates the bitmap repr, so its
    /// dense entries arrive gap-encoded).
    fn canonicalize(&mut self) {
        if !self.is_canonical() {
            self.reencode();
        }
    }

    /// Reconstruct an entry from snapshot parts, validating that `packed`
    /// is a structurally exact encoding of `df` strictly increasing
    /// postings under `repr` whose term frequencies sum to `occurrences`.
    /// Canonicality of the repr *choice* is the caller's concern (enforced
    /// for v3 snapshots, reinstated by conversion for v2).
    fn from_packed(
        repr: PostingsRepr,
        packed: Vec<u8>,
        df: u32,
        occurrences: u64,
    ) -> Result<Self, SnapshotError> {
        match repr {
            PostingsRepr::Gaps => {
                let mut pos = 0usize;
                let mut last = 0u32;
                let mut total = 0u64;
                for i in 0..df {
                    let delta = checked_varu32(&packed, &mut pos)?;
                    let row = if i == 0 {
                        delta
                    } else {
                        if delta == 0 {
                            return Err(SnapshotError::Corrupt(
                                "packed postings not strictly increasing".into(),
                            ));
                        }
                        last.checked_add(delta).ok_or_else(|| {
                            SnapshotError::Corrupt("packed postings row id exceeds u32".into())
                        })?
                    };
                    let tf = checked_varu32(&packed, &mut pos)?;
                    total += tf as u64;
                    last = row;
                }
                if pos != packed.len() {
                    return Err(SnapshotError::Corrupt(
                        "trailing bytes after packed postings".into(),
                    ));
                }
                if total != occurrences {
                    return Err(SnapshotError::Corrupt(
                        "packed postings occurrence total mismatch".into(),
                    ));
                }
                Ok(TermAttrEntry {
                    packed,
                    repr,
                    df,
                    last,
                    occurrences,
                })
            }
            PostingsRepr::Bitmap => {
                if df == 0 {
                    return Err(SnapshotError::Corrupt("empty bitmap postings".into()));
                }
                let mut pos = 0usize;
                let base = checked_varu32(&packed, &mut pos)?;
                let nwords = checked_varu32(&packed, &mut pos)? as usize;
                let words_len = nwords
                    .checked_mul(8)
                    .ok_or_else(|| SnapshotError::Corrupt("bitmap word count overflow".into()))?;
                let words_end = pos
                    .checked_add(words_len)
                    .ok_or_else(|| SnapshotError::Corrupt("bitmap word count overflow".into()))?;
                let words = packed
                    .get(pos..words_end)
                    .ok_or_else(|| SnapshotError::Corrupt("truncated bitmap words".into()))?;
                if nwords == 0 || words[0] & 1 == 0 {
                    return Err(SnapshotError::Corrupt(
                        "bitmap base bit unset (base must be the first row)".into(),
                    ));
                }
                if words[words_len - 8..].iter().all(|&b| b == 0) {
                    return Err(SnapshotError::Corrupt(
                        "bitmap trailing empty word (nwords not minimal)".into(),
                    ));
                }
                if count_set_bits(words, 0, words_len * 8) != df as usize {
                    return Err(SnapshotError::Corrupt("bitmap popcount != df".into()));
                }
                let last_byte = words.iter().rposition(|&b| b != 0).expect("nonzero word");
                let last_bit = last_byte * 8 + 7 - words[last_byte].leading_zeros() as usize;
                let last = u32::try_from(last_bit)
                    .ok()
                    .and_then(|b| base.checked_add(b))
                    .ok_or_else(|| SnapshotError::Corrupt("bitmap row id exceeds u32".into()))?;
                pos += words_len;
                let mut total = 0u64;
                for _ in 0..df {
                    total += checked_varu32(&packed, &mut pos)? as u64;
                }
                if pos != packed.len() {
                    return Err(SnapshotError::Corrupt(
                        "trailing bytes after packed postings".into(),
                    ));
                }
                if total != occurrences {
                    return Err(SnapshotError::Corrupt(
                        "packed postings occurrence total mismatch".into(),
                    ));
                }
                Ok(TermAttrEntry {
                    packed,
                    repr,
                    df,
                    last,
                    occurrences,
                })
            }
        }
    }
}

/// Walk the intersection of several row-sorted postings lists, calling
/// `visit(row, min_tf)` for every row present in *all* lists. `visit`
/// returns `false` to stop early.
///
/// All-bitmap intersections take a word-at-a-time AND fast path; any mix
/// involving a gaps list runs the k-way leapfrog merge, where each advance
/// [`Postings::seek`]s — bitmap lists jump straight to the target bit
/// instead of decoding every overleapt posting. Both paths emit the
/// identical ascending `(row, min_tf)` sequence.
pub fn for_each_joint_row(lists: &[&TermAttrEntry], mut visit: impl FnMut(RowId, u32) -> bool) {
    if lists.is_empty() {
        return;
    }
    if lists.len() >= 2
        && lists
            .iter()
            .all(|e| e.repr() == PostingsRepr::Bitmap && e.df > 0)
    {
        return joint_bitmap_and(lists, visit);
    }
    let mut iters: Vec<Postings<'_>> = lists.iter().map(|e| e.rows()).collect();
    let mut heads: Vec<(RowId, u32)> = Vec::with_capacity(iters.len());
    for it in &mut iters {
        match it.next() {
            Some(h) => heads.push(h),
            None => return,
        }
    }
    loop {
        let target = heads.iter().map(|h| h.0).max().expect("lists nonempty");
        let mut aligned = true;
        for (head, it) in heads.iter_mut().zip(&mut iters) {
            if head.0 < target {
                match it.seek(target) {
                    Some(h) => *head = h,
                    None => return,
                }
            }
            if head.0 > target {
                aligned = false;
            }
        }
        if !aligned {
            continue; // some list leapt past `target`: re-aim at the new max
        }
        let min_tf = heads.iter().map(|h| h.1).min().expect("lists nonempty");
        if !visit(target, min_tf) {
            return;
        }
        for (head, it) in heads.iter_mut().zip(&mut iters) {
            match it.next() {
                Some(h) => *head = h,
                None => return,
            }
        }
    }
}

/// 64 presence bits of `words` starting at relative bit `r0` (which may be
/// negative or run past the end — out-of-range bits read as zero): bit `j`
/// of the result = bit `r0 + j` of the bitmap.
fn bits_at(words: &[u8], r0: i64) -> u64 {
    let byte0 = r0.div_euclid(8);
    let sh = r0.rem_euclid(8) as u32;
    let mut buf = [0u8; 8];
    for (j, b) in buf.iter_mut().enumerate() {
        let k = byte0 + j as i64;
        if k >= 0 && (k as usize) < words.len() {
            *b = words[k as usize];
        }
    }
    let lo = u64::from_le_bytes(buf);
    if sh == 0 {
        lo
    } else {
        let k = byte0 + 8;
        let hi = if k >= 0 && (k as usize) < words.len() {
            words[k as usize] as u64
        } else {
            0
        };
        (lo >> sh) | (hi << (64 - sh))
    }
}

/// The all-bitmap fast path of [`for_each_joint_row`]: AND the (mutually
/// unaligned) word blocks 64 rows at a time over the lists' overlapping
/// span, then rank each surviving row into every list's tf stream through a
/// monotone [`Postings::seek`] cursor. Total work is one word-AND sweep of
/// the span plus one sequential tf-stream pass per list — no per-row heap
/// leapfrogging.
fn joint_bitmap_and(lists: &[&TermAttrEntry], mut visit: impl FnMut(RowId, u32) -> bool) {
    let parts: Vec<(u32, &[u8])> = lists
        .iter()
        .map(|e| {
            let (base, words, _) = e.bitmap_parts().expect("all lists bitmap");
            (base, words)
        })
        .collect();
    let lo = parts.iter().map(|&(b, _)| b).max().expect("lists nonempty");
    let hi = lists.iter().map(|e| e.last).min().expect("lists nonempty");
    if hi < lo {
        return;
    }
    let mut tf_cursors: Vec<Postings<'_>> = lists.iter().map(|e| e.rows()).collect();
    let mut a = lo as u64;
    while a <= hi as u64 {
        let mut word = !0u64;
        for &(base, words) in &parts {
            word &= bits_at(words, a as i64 - base as i64);
            if word == 0 {
                break;
            }
        }
        while word != 0 {
            let b = word.trailing_zeros();
            word &= word - 1;
            let row = RowId(a as u32 + b);
            let mut min_tf = u32::MAX;
            for cur in &mut tf_cursors {
                let (r, tf) = cur.seek(row).expect("row set in every bitmap");
                debug_assert_eq!(r, row);
                min_tf = min_tf.min(tf);
            }
            if !visit(row, min_tf) {
                return;
            }
        }
        a += 64;
    }
}

/// All postings of one term, over every attribute it occurs in.
/// `attrs` is sorted; `postings[i]` belongs to `attrs[i]`.
#[derive(Debug, Clone, Default)]
struct TermEntry {
    attrs: Vec<AttrRef>,
    postings: Vec<TermAttrEntry>,
}

impl TermEntry {
    fn get(&self, attr: AttrRef) -> Option<&TermAttrEntry> {
        self.attrs
            .binary_search(&attr)
            .ok()
            .map(|i| &self.postings[i])
    }
}

/// Aggregate statistics of one indexed attribute.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttrStats {
    /// Number of rows in the attribute's table.
    pub row_count: u32,
    /// Total token count over all values of this attribute.
    pub total_tokens: u64,
    /// Number of distinct terms occurring in this attribute.
    pub vocabulary: u32,
}

/// A schema element whose *name* matches a keyword (metadata interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaTarget {
    /// The keyword matches a table name token.
    Table(TableId),
    /// The keyword matches an attribute name token.
    Attribute(AttrRef),
}

/// Inverted index over every text attribute of a database.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// term -> attribute-sorted postings.
    dict: HashMap<String, TermEntry>,
    /// Statistics per indexed attribute.
    attr_stats: HashMap<AttrRef, AttrStats>,
    /// term -> schema elements whose name contains the term.
    schema_terms: HashMap<String, Vec<SchemaTarget>>,
    tokenizer: Tokenizer,
}

impl InvertedIndex {
    /// Index all text attributes of `db` with the default tokenizer.
    pub fn build(db: &Database) -> Self {
        Self::build_with(db, Tokenizer::new())
    }

    /// Index all text attributes of `db` with a custom tokenizer.
    pub fn build_with(db: &Database, tokenizer: Tokenizer) -> Self {
        let mut staging: HashMap<String, HashMap<AttrRef, TermAttrEntry>> = HashMap::new();
        let mut attr_stats: HashMap<AttrRef, AttrStats> = HashMap::new();

        for (tid, tdef) in db.schema().tables() {
            let store = db.table(tid);
            for (aid, _) in tdef.text_attrs() {
                let aref = AttrRef {
                    table: tid,
                    attr: aid,
                };
                let stats = attr_stats.entry(aref).or_default();
                stats.row_count = store.len() as u32;
                for (rid, row) in store.rows() {
                    let Some(text) = row[aid.0 as usize].as_text() else {
                        continue;
                    };
                    let tokens = tokenizer.tokenize(text);
                    stats.total_tokens += tokens.len() as u64;
                    let mut counts: HashMap<&str, u32> = HashMap::new();
                    for t in &tokens {
                        *counts.entry(t.as_str()).or_default() += 1;
                    }
                    for (term, tf) in counts {
                        // Rows are visited in ascending id order, so staging
                        // postings grow by the packed append fast path.
                        staging
                            .entry(term.to_owned())
                            .or_default()
                            .entry(aref)
                            .or_default()
                            .push(rid, tf);
                    }
                }
            }
        }

        // Freeze staged postings into attribute-sorted parallel vectors and
        // tally per-attribute vocabulary sizes in the same pass.
        let mut dict: HashMap<String, TermEntry> = HashMap::with_capacity(staging.len());
        for (term, by_attr) in staging {
            let mut pairs: Vec<(AttrRef, TermAttrEntry)> = by_attr.into_iter().collect();
            pairs.sort_by_key(|(a, _)| *a);
            let mut entry = TermEntry {
                attrs: Vec::with_capacity(pairs.len()),
                postings: Vec::with_capacity(pairs.len()),
            };
            for (aref, postings) in pairs {
                if let Some(s) = attr_stats.get_mut(&aref) {
                    s.vocabulary += 1;
                }
                entry.attrs.push(aref);
                entry.postings.push(postings);
            }
            dict.insert(term, entry);
        }

        // Schema-term index over table and attribute names.
        let mut schema_terms: HashMap<String, Vec<SchemaTarget>> = HashMap::new();
        for (tid, tdef) in db.schema().tables() {
            for tok in tokenizer.tokenize(&tdef.name) {
                schema_terms
                    .entry(tok)
                    .or_default()
                    .push(SchemaTarget::Table(tid));
            }
            for (aid, adef) in tdef.attrs_with_ids() {
                for tok in tokenizer.tokenize(&adef.name) {
                    schema_terms
                        .entry(tok)
                        .or_default()
                        .push(SchemaTarget::Attribute(AttrRef {
                            table: tid,
                            attr: aid,
                        }));
                }
            }
        }

        InvertedIndex {
            dict,
            attr_stats,
            schema_terms,
            tokenizer,
        }
    }

    /// Incrementally index one freshly inserted row of `table`, splicing its
    /// postings and updating attribute statistics online so that the result
    /// is *exactly* what [`Self::build`] would produce over the grown
    /// database — same postings (sorted by row id), same sorted
    /// [`Self::attrs_containing`] slices, same integer statistics and hence
    /// bit-identical ATF/IDF/joint-ATF values. The live-ingestion
    /// equivalence suite depends on this exactness.
    ///
    /// Call once per inserted row, *after* the row landed in `db`. Rows of
    /// tables without text attributes are a no-op. Schema-name terms need no
    /// maintenance: the schema is immutable.
    pub fn index_row(&mut self, db: &Database, table: TableId, row: RowId) {
        self.index_row_values(db.schema(), table, row, db.table(table).row(row));
    }

    /// [`Self::index_row`] for a row that is *not* stored in a local
    /// [`Database`]: the caller supplies the schema and the row's values
    /// directly. The sharded coordinator uses this to keep its global index
    /// current — routed rows land in per-shard stores under shard-local ids,
    /// so the coordinator indexes the batch's values under the row's global
    /// id instead of re-reading a store. Bit-identical in effect to
    /// [`Self::index_row`] over a database holding `values` at `row`.
    pub fn index_row_values(
        &mut self,
        schema: &keybridge_relstore::Schema,
        table: TableId,
        row: RowId,
        values: &[keybridge_relstore::Value],
    ) {
        let tdef = schema.table(table);
        let stored = values;
        for (aid, _) in tdef.text_attrs() {
            let aref = AttrRef { table, attr: aid };
            let stats = self.attr_stats.entry(aref).or_default();
            stats.row_count += 1;
            let Some(text) = stored[aid.0 as usize].as_text() else {
                continue;
            };
            let tokens = self.tokenizer.tokenize(text);
            stats.total_tokens += tokens.len() as u64;
            let mut counts: HashMap<&str, u32> = HashMap::new();
            for t in &tokens {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            for (term, tf) in counts {
                let entry = self.dict.entry(term.to_owned()).or_default();
                let slot = match entry.attrs.binary_search(&aref) {
                    Ok(i) => i,
                    Err(i) => {
                        // First occurrence of the term in this attribute:
                        // splice the parallel vectors at the sorted position
                        // and grow the attribute's vocabulary.
                        entry.attrs.insert(i, aref);
                        entry.postings.insert(i, TermAttrEntry::default());
                        if let Some(s) = self.attr_stats.get_mut(&aref) {
                            s.vocabulary += 1;
                        }
                        i
                    }
                };
                // Postings stay row-sorted. Fresh rows carry the largest id
                // of their table, so the common case is a packed append; the
                // upsert's decode-splice-reencode path keeps re-indexing or
                // out-of-order maintenance canonical too.
                entry.postings[slot].upsert(row, tf);
            }
        }
    }

    /// [`Self::index_row`] over a batch of freshly inserted rows (e.g. the
    /// ids returned by `Database::insert_batch`, zipped with their tables).
    pub fn index_batch(&mut self, db: &Database, rows: &[(TableId, RowId)]) {
        for &(table, row) in rows {
            self.index_row(db, table, row);
        }
    }

    /// All dictionary terms, in no particular order (diagnostics and the
    /// incremental-equivalence tests).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.dict.keys().map(String::as_str)
    }

    /// The tokenizer the index was built with.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Number of distinct terms in the dictionary.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Statistics of one attribute (zeroed if the attribute is not indexed).
    pub fn attr_stats(&self, attr: AttrRef) -> AttrStats {
        self.attr_stats.get(&attr).copied().unwrap_or_default()
    }

    /// All indexed attributes.
    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrRef> + '_ {
        self.attr_stats.keys().copied()
    }

    /// Postings of `term` in `attr`, if any.
    pub fn postings(&self, term: &str, attr: AttrRef) -> Option<&TermAttrEntry> {
        self.dict.get(term)?.get(attr)
    }

    /// The attributes in which `term` occurs, sorted — a borrowed slice, so
    /// the per-query candidate harvest allocates nothing.
    pub fn attrs_containing(&self, term: &str) -> &[AttrRef] {
        self.dict
            .get(term)
            .map(|e| e.attrs.as_slice())
            .unwrap_or(&[])
    }

    /// Schema elements whose name contains `term`.
    pub fn schema_matches(&self, term: &str) -> &[SchemaTarget] {
        self.schema_terms
            .get(term)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The postings lists of all `terms` in `attr`, sorted smallest-first.
    /// `None` when any term is absent from the attribute (the intersection
    /// is empty a priori).
    fn term_lists<'a>(
        &'a self,
        terms: &[String],
        attr: AttrRef,
        lists: &mut Vec<&'a TermAttrEntry>,
    ) -> bool {
        lists.clear();
        for t in terms {
            match self.postings(t, attr) {
                Some(e) => lists.push(e),
                None => return false,
            }
        }
        lists.sort_by_key(|e| e.df());
        true
    }

    /// Rows of `attr`'s table whose value contains *all* of `terms`
    /// (the `k1..km ⊂ A` containment predicate of Def. 3.5.2), sorted.
    pub fn rows_with_all(&self, terms: &[String], attr: AttrRef) -> Vec<RowId> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.rows_with_all_into(terms, attr, &mut out, &mut scratch);
        out
    }

    /// Allocation-free variant of [`Self::rows_with_all`]: the intersection
    /// lands in `out`; `scratch` is a reusable work buffer kept for API
    /// stability (the k-way merge intersects in one pass without it). Both
    /// are cleared first, so callers can reuse them across calls.
    pub fn rows_with_all_into(
        &self,
        terms: &[String],
        attr: AttrRef,
        out: &mut Vec<RowId>,
        scratch: &mut Vec<RowId>,
    ) {
        out.clear();
        scratch.clear();
        if terms.is_empty() {
            return;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return;
        }
        for_each_joint_row(&lists, |row, _| {
            out.push(row);
            true
        });
    }

    /// Whether at least one row of `attr` contains *all* of `terms` — the
    /// non-emptiness probe of the DivQ necessary condition (§4.4.1). The
    /// k-way merge exits on the first surviving row, so the common case (a
    /// frequent co-occurrence) decodes only a prefix of each list instead
    /// of running a full intersection.
    pub fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool {
        if terms.is_empty() {
            return false;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return false;
        }
        let mut found = false;
        for_each_joint_row(&lists, |_, _| {
            found = true;
            false
        });
        found
    }

    /// Document frequency of `term` in `attr`: number of rows containing it.
    pub fn df(&self, term: &str, attr: AttrRef) -> usize {
        self.postings(term, attr).map_or(0, TermAttrEntry::df)
    }

    /// Lucene-style inverse document frequency of `term` within `attr`:
    /// `1 + ln((N + 1) / (df + 1))`.
    pub fn idf(&self, term: &str, attr: AttrRef) -> f64 {
        let n = self.attr_stats(attr).row_count as f64;
        let df = self.df(term, attr) as f64;
        1.0 + ((n + 1.0) / (df + 1.0)).ln()
    }

    /// The ATF normalizer of `attr` under smoothing `alpha` (the denominator
    /// of Eq. 3.8). Zero when the attribute holds no tokens and `alpha` is
    /// zero. Exposed so incremental scorers can cache it per attribute.
    pub fn atf_denominator(&self, attr: AttrRef, alpha: f64) -> f64 {
        let stats = self.attr_stats(attr);
        stats.total_tokens as f64 + alpha * (stats.vocabulary as f64 + 1.0)
    }

    /// Attribute term frequency with additive smoothing (Eq. 3.8):
    /// the probability that a random token drawn from `attr` is `term`,
    /// Laplace-smoothed with parameter `alpha` so unseen terms keep a small
    /// non-zero mass. The paper writes `ATF = TF + α` up to normalization;
    /// we implement the normalized form directly.
    pub fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64 {
        let occ = self.postings(term, attr).map_or(0, |e| e.occurrences) as f64;
        let denom = self.atf_denominator(attr, alpha);
        if denom <= 0.0 {
            return 0.0;
        }
        (occ + alpha) / denom
    }

    /// Joint attribute term frequency of a keyword *bag* (DivQ, Eq. 4.2):
    /// how often the combination `terms` co-occurs inside single values of
    /// `attr`. A row contributes `min_i tf(term_i)` combination occurrences.
    /// When the terms genuinely co-occur (first + last name in a `name`
    /// attribute) this exceeds the product of marginal ATFs, which is what
    /// pushes phrase-consistent interpretations up the ranking.
    ///
    /// Joint occurrences are counted by a k-way leapfrog merge over the
    /// delta-decoded postings lists — no per-call hash maps.
    pub fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        if terms.len() == 1 {
            return self.atf(&terms[0], attr, alpha);
        }
        let denom = self.atf_denominator(attr, alpha);
        if denom <= 0.0 {
            return 0.0;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return alpha / denom;
        }
        let joint = self
            .joint_occurrences(terms, attr)
            .expect("term_lists succeeded");
        (joint as f64 + alpha) / denom
    }

    /// Total combination occurrences of `terms` within single values of
    /// `attr` (the numerator of [`Self::joint_atf`] before smoothing): each
    /// row contributes `min_i tf(term_i)`. `None` when some term has no
    /// postings in `attr` at all — callers merging several indexes need to
    /// distinguish "absent here" (skip) from "present with zero joint
    /// occurrences" (count).
    pub fn joint_occurrences(&self, terms: &[String], attr: AttrRef) -> Option<u64> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return None;
        }
        let mut joint: u64 = 0;
        for_each_joint_row(&lists, |_, min_tf| {
            joint += min_tf as u64;
            true
        });
        Some(joint)
    }

    /// Flat iteration over every `(term, attribute, postings)` triple, for
    /// building merged views over several indexes. Order is unspecified
    /// (hash-map iteration); merging callers must sort.
    pub fn term_attr_postings(&self) -> impl Iterator<Item = (&str, AttrRef, &TermAttrEntry)> {
        self.dict.iter().flat_map(|(term, entry)| {
            entry
                .attrs
                .iter()
                .zip(&entry.postings)
                .map(move |(&attr, p)| (term.as_str(), attr, p))
        })
    }
}

/// The slice of index functionality the interpretation-generation layer
/// consumes: candidate harvesting ([`TermIndex::attrs_containing`],
/// [`TermIndex::schema_matches`]), predicate non-emptiness
/// ([`TermIndex::has_row_with_all`]), and the smoothed (joint) attribute
/// term frequencies the probability model scores with. Implemented by
/// [`InvertedIndex`] and by merged multi-shard views, so one generation
/// code path serves both a single store and a sharded coordinator.
pub trait TermIndex {
    /// The attributes in which `term` occurs, sorted.
    fn attrs_containing(&self, term: &str) -> &[AttrRef];
    /// Schema elements whose name contains `term`.
    fn schema_matches(&self, term: &str) -> &[SchemaTarget];
    /// Whether at least one row of `attr` contains *all* of `terms`.
    fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool;
    /// Attribute term frequency with additive smoothing (Eq. 3.8).
    fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64;
    /// Joint attribute term frequency of a keyword bag (DivQ, Eq. 4.2).
    fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64;
}

impl TermIndex for InvertedIndex {
    fn attrs_containing(&self, term: &str) -> &[AttrRef] {
        InvertedIndex::attrs_containing(self, term)
    }

    fn schema_matches(&self, term: &str) -> &[SchemaTarget] {
        InvertedIndex::schema_matches(self, term)
    }

    fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool {
        InvertedIndex::has_row_with_all(self, terms, attr)
    }

    fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64 {
        InvertedIndex::atf(self, term, attr, alpha)
    }

    fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64 {
        InvertedIndex::joint_atf(self, terms, attr, alpha)
    }
}

// ---------------------------------------------------------------------------
// On-disk snapshot (same framing as the relstore database snapshot:
// length-prefixed, CRC-checksummed sections behind a versioned magic header).
// ---------------------------------------------------------------------------

const IDX_MAGIC: &[u8; 8] = b"KBTIDX01";
/// Version 3: adds a one-byte [`PostingsRepr`] tag per dictionary entry so
/// dense lists snapshot their bitmap blocks verbatim. Version-2 snapshots
/// (all gaps, no tag) are still readable — their dense entries are
/// canonicalized to bitmaps on load, so a loaded v2 index re-snapshots to
/// the same bytes a fresh build would. Version-1 snapshots are rejected
/// (rebuild from the store instead — the WAL/snapshot recovery path always
/// can).
const IDX_VERSION: u32 = 3;
/// Oldest still-readable snapshot version.
const IDX_MIN_VERSION: u32 = 2;
/// [`PostingsRepr`] tags of the v3 dictionary section.
const REPR_GAPS: u8 = 0;
const REPR_BITMAP: u8 = 1;
const SEC_TOKENIZER: u8 = 1;
const SEC_ATTR_STATS: u8 = 2;
const SEC_DICT: u8 = 3;
const SEC_SCHEMA_TERMS: u8 = 4;

const TARGET_TABLE: u8 = 0;
const TARGET_ATTR: u8 = 1;

fn put_attr_ref(out: &mut Vec<u8>, a: AttrRef) {
    put_u32(out, a.table.0);
    put_u32(out, a.attr.0);
}

fn read_attr_ref(c: &mut Cursor<'_>) -> Result<AttrRef, SnapshotError> {
    Ok(AttrRef {
        table: TableId(c.u32()?),
        attr: AttrId(c.u32()?),
    })
}

impl InvertedIndex {
    /// Serialize the index — tokenizer configuration, attribute statistics,
    /// the full dictionary, and the schema-term index. Deterministic: terms,
    /// attributes, and targets are written sorted (postings are row-sorted
    /// already), so the same index always yields the same bytes, and a
    /// future mmap-style reader can binary-search the dictionary in place.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        out.extend_from_slice(IDX_MAGIC);
        put_u32(&mut out, IDX_VERSION);

        let mut sec = Vec::new();
        let stopwords = self.tokenizer.stopwords();
        put_u32(&mut sec, len_u32("stopword count", stopwords.len())?);
        for w in stopwords {
            put_str(&mut sec, w)?;
        }
        put_section(&mut out, SEC_TOKENIZER, &sec);

        let mut sec = Vec::new();
        let mut stats: Vec<(AttrRef, AttrStats)> =
            self.attr_stats.iter().map(|(a, s)| (*a, *s)).collect();
        stats.sort_by_key(|(a, _)| *a);
        put_u32(&mut sec, len_u32("attribute stats count", stats.len())?);
        for (aref, s) in stats {
            put_attr_ref(&mut sec, aref);
            put_u32(&mut sec, s.row_count);
            put_u64(&mut sec, s.total_tokens);
            put_u32(&mut sec, s.vocabulary);
        }
        put_section(&mut out, SEC_ATTR_STATS, &sec);

        let mut sec = Vec::new();
        let mut terms: Vec<&String> = self.dict.keys().collect();
        terms.sort_unstable();
        put_varu32(&mut sec, len_u32("dictionary term count", terms.len())?);
        for term in terms {
            let entry = &self.dict[term];
            put_str(&mut sec, term)?;
            put_varu32(
                &mut sec,
                len_u32("term attribute count", entry.attrs.len())?,
            );
            for (aref, posting) in entry.attrs.iter().zip(&entry.postings) {
                put_attr_ref(&mut sec, *aref);
                put_varu64(&mut sec, posting.occurrences);
                put_varu32(&mut sec, posting.df);
                put_u8(
                    &mut sec,
                    match posting.repr {
                        PostingsRepr::Gaps => REPR_GAPS,
                        PostingsRepr::Bitmap => REPR_BITMAP,
                    },
                );
                // The packed buffer (repr choice included) is canonical, so
                // writing it verbatim keeps snapshots bit-identical to a
                // from-scratch rebuild.
                put_varu32(&mut sec, len_u32("packed postings", posting.packed.len())?);
                sec.extend_from_slice(&posting.packed);
            }
        }
        put_section(&mut out, SEC_DICT, &sec);

        let mut sec = Vec::new();
        let mut schema_terms: Vec<(&String, &Vec<SchemaTarget>)> =
            self.schema_terms.iter().collect();
        schema_terms.sort_by_key(|(t, _)| *t);
        put_u32(&mut sec, len_u32("schema term count", schema_terms.len())?);
        for (term, targets) in schema_terms {
            put_str(&mut sec, term)?;
            put_u32(&mut sec, len_u32("schema target count", targets.len())?);
            for t in targets {
                match t {
                    SchemaTarget::Table(tid) => {
                        put_u8(&mut sec, TARGET_TABLE);
                        put_u32(&mut sec, tid.0);
                        put_u32(&mut sec, 0);
                    }
                    SchemaTarget::Attribute(aref) => {
                        put_u8(&mut sec, TARGET_ATTR);
                        put_attr_ref(&mut sec, *aref);
                    }
                }
            }
        }
        put_section(&mut out, SEC_SCHEMA_TERMS, &sec);
        Ok(out)
    }

    /// Size in bytes of the *version-1* snapshot encoding of this index —
    /// fixed-width `(row, tf)` `u32` pairs, no dictionary deltas — computed
    /// without materializing it. The footprint benchmark reports the packed
    /// encoding's win against this figure.
    pub fn naive_snapshot_bytes(&self) -> u64 {
        const FRAME: u64 = 13; // section tag + u64 length + crc32
        let mut total: u64 = 12; // magic + version
        let mut sec: u64 = 4;
        for w in self.tokenizer.stopwords() {
            sec += 4 + w.len() as u64;
        }
        total += FRAME + sec;
        total += FRAME + 4 + self.attr_stats.len() as u64 * 24;
        let mut sec: u64 = 4;
        for (term, entry) in &self.dict {
            sec += 4 + term.len() as u64 + 4;
            for p in &entry.postings {
                sec += 8 + 8 + 4 + p.df as u64 * 8;
            }
        }
        total += FRAME + sec;
        let mut sec: u64 = 4;
        for (term, targets) in &self.schema_terms {
            sec += 4 + term.len() as u64 + 4 + targets.len() as u64 * 9;
        }
        total += FRAME + sec;
        total
    }

    /// Total packed postings bytes across the dictionary (diagnostics for
    /// the footprint benchmark).
    pub fn postings_bytes(&self) -> u64 {
        self.dict
            .values()
            .flat_map(|e| &e.postings)
            .map(|p| p.packed.len() as u64)
            .sum()
    }

    /// Decode a snapshot produced by [`Self::snapshot_bytes`]. The result is
    /// observationally identical to the original index: same postings, same
    /// statistics, same schema matches, same tokenizer behavior.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut c = Cursor::new(bytes);
        if c.take(8)? != IDX_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.u32()?;
        if !(IDX_MIN_VERSION..=IDX_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let mut tc = Cursor::new(c.section(SEC_TOKENIZER)?);
        let n = tc.u32()? as usize;
        let mut stopwords = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            stopwords.push(tc.str()?);
        }
        let tokenizer = Tokenizer::with_stopwords(stopwords);

        let mut sc = Cursor::new(c.section(SEC_ATTR_STATS)?);
        let n = sc.u32()? as usize;
        let mut attr_stats = HashMap::with_capacity(n);
        for _ in 0..n {
            let aref = read_attr_ref(&mut sc)?;
            attr_stats.insert(
                aref,
                AttrStats {
                    row_count: sc.u32()?,
                    total_tokens: sc.u64()?,
                    vocabulary: sc.u32()?,
                },
            );
        }

        let mut dc = Cursor::new(c.section(SEC_DICT)?);
        let n_terms = dc.varu32()? as usize;
        let mut dict = HashMap::with_capacity(n_terms.min(1 << 20));
        for _ in 0..n_terms {
            let term = dc.str()?;
            let n_attrs = dc.varu32()? as usize;
            let mut entry = TermEntry {
                attrs: Vec::with_capacity(n_attrs.min(1 << 16)),
                postings: Vec::with_capacity(n_attrs.min(1 << 16)),
            };
            for _ in 0..n_attrs {
                let aref = read_attr_ref(&mut dc)?;
                let occurrences = dc.varu64()?;
                let df = dc.varu32()?;
                let repr = if version >= 3 {
                    match dc.u8()? {
                        REPR_GAPS => PostingsRepr::Gaps,
                        REPR_BITMAP => PostingsRepr::Bitmap,
                        k => {
                            return Err(SnapshotError::Corrupt(format!(
                                "unknown postings repr tag {k}"
                            )))
                        }
                    }
                } else {
                    PostingsRepr::Gaps
                };
                let packed_len = dc.varu32()? as usize;
                let packed = dc.take(packed_len)?.to_vec();
                let mut posting = TermAttrEntry::from_packed(repr, packed, df, occurrences)?;
                if version >= 3 {
                    // v3 stores the canonical repr; a mismatched tag means
                    // the snapshot was not produced by this encoder.
                    if !posting.is_canonical() {
                        return Err(SnapshotError::Corrupt("non-canonical postings repr".into()));
                    }
                } else {
                    // v2 predates the bitmap repr: upgrade dense entries so
                    // the loaded index is byte-identical to a fresh build.
                    posting.canonicalize();
                }
                entry.attrs.push(aref);
                entry.postings.push(posting);
            }
            dict.insert(term, entry);
        }

        let mut xc = Cursor::new(c.section(SEC_SCHEMA_TERMS)?);
        let n = xc.u32()? as usize;
        let mut schema_terms = HashMap::with_capacity(n);
        for _ in 0..n {
            let term = xc.str()?;
            let n_targets = xc.u32()? as usize;
            let mut targets = Vec::with_capacity(n_targets.min(1 << 16));
            for _ in 0..n_targets {
                let kind = xc.u8()?;
                let table = TableId(xc.u32()?);
                let attr = AttrId(xc.u32()?);
                targets.push(match kind {
                    TARGET_TABLE => SchemaTarget::Table(table),
                    TARGET_ATTR => SchemaTarget::Attribute(AttrRef { table, attr }),
                    k => {
                        return Err(SnapshotError::Corrupt(format!(
                            "unknown schema target kind {k}"
                        )))
                    }
                });
            }
            schema_terms.insert(term, targets);
        }
        if c.remaining() != 0 {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after index snapshot".into(),
            ));
        }
        Ok(InvertedIndex {
            dict,
            attr_stats,
            schema_terms,
            tokenizer,
        })
    }

    /// Write [`Self::snapshot_bytes`] to `path`, fsynced.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.snapshot_bytes()?)?;
        f.sync_all()?;
        Ok(())
    }

    /// Read and decode a snapshot written by [`Self::save_snapshot`].
    pub fn load_snapshot(path: &std::path::Path) -> Result<InvertedIndex, SnapshotError> {
        use std::io::Read;
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        InvertedIndex::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{Database, SchemaBuilder, TableKind, Value};

    fn db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        for (id, n) in [
            (1, "Tom Hanks"),
            (2, "Tom Cruise"),
            (3, "Colin Hanks"),
            (4, "Meg Ryan"),
        ] {
            db.insert(actor, vec![Value::Int(id), Value::text(n)])
                .unwrap();
        }
        for (id, t, y) in [
            (10, "The Terminal", 2004),
            (11, "Tom and Huck", 1995),
            (12, "Terminal Velocity", 1994),
        ] {
            db.insert(movie, vec![Value::Int(id), Value::text(t), Value::Int(y)])
                .unwrap();
        }
        db
    }

    fn aref(db: &Database, table: &str, attr: &str) -> AttrRef {
        db.schema().resolve(table, attr).unwrap()
    }

    #[test]
    fn postings_and_df() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        assert_eq!(idx.df("tom", name), 2);
        assert_eq!(idx.df("hanks", name), 2);
        assert_eq!(idx.df("tom", title), 1);
        assert_eq!(idx.df("terminal", title), 2);
        assert_eq!(idx.df("nope", title), 0);
        assert!(idx.term_count() > 0);
    }

    #[test]
    fn attrs_containing_term() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let attrs = idx.attrs_containing("tom");
        assert_eq!(attrs.len(), 2); // actor.name and movie.title
                                    // Returned sorted, so candidate harvesting needs no re-sort.
        assert!(attrs.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.attrs_containing("zzz").is_empty());
    }

    #[test]
    fn rows_with_all_intersects() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let tom_hanks = idx.rows_with_all(&["tom".to_owned(), "hanks".to_owned()], name);
        assert_eq!(tom_hanks.len(), 1);
        let toms = idx.rows_with_all(&["tom".to_owned()], name);
        assert_eq!(toms.len(), 2);
        assert!(idx
            .rows_with_all(&["tom".to_owned(), "ryan".to_owned()], name)
            .is_empty());
        assert!(idx.rows_with_all(&[], name).is_empty());
    }

    #[test]
    fn rows_with_all_into_reuses_buffers() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let mut out = vec![RowId(99)]; // stale content must be cleared
        let mut scratch = vec![RowId(98)];
        idx.rows_with_all_into(
            &["tom".to_owned(), "hanks".to_owned()],
            name,
            &mut out,
            &mut scratch,
        );
        assert_eq!(out.len(), 1);
        idx.rows_with_all_into(&["tom".to_owned()], name, &mut out, &mut scratch);
        assert_eq!(out.len(), 2);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted output");
    }

    #[test]
    fn has_row_with_all_matches_full_intersection() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        for (terms, attr) in [
            (vec!["tom".to_owned(), "hanks".to_owned()], name),
            (vec!["tom".to_owned(), "ryan".to_owned()], name),
            (vec!["terminal".to_owned()], title),
            (vec!["tom".to_owned(), "huck".to_owned()], title),
            (vec![], name),
        ] {
            assert_eq!(
                idx.has_row_with_all(&terms, attr),
                !idx.rows_with_all(&terms, attr).is_empty(),
                "{terms:?}"
            );
        }
    }

    #[test]
    fn atf_prefers_frequent_terms() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        // "tom" occurs twice in actor.name, "meg" once.
        assert!(idx.atf("tom", name, 1.0) > idx.atf("meg", name, 1.0));
        // Unseen terms get non-zero smoothed mass, below seen terms.
        let unseen = idx.atf("zzz", name, 1.0);
        assert!(unseen > 0.0);
        assert!(unseen < idx.atf("meg", name, 1.0));
    }

    #[test]
    fn atf_sums_to_one_over_vocab() {
        // Σ_term atf(term) + atf(one unseen) ≈ 1 by construction.
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let stats = idx.attr_stats(name);
        let terms = ["tom", "hanks", "cruise", "colin", "meg", "ryan"];
        assert_eq!(stats.vocabulary as usize, terms.len());
        let sum: f64 = terms.iter().map(|t| idx.atf(t, name, 1.0)).sum();
        let with_unseen = sum + idx.atf("unseen", name, 1.0);
        assert!((with_unseen - 1.0).abs() < 1e-9, "sum = {with_unseen}");
    }

    #[test]
    fn joint_atf_rewards_cooccurrence() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        let pair = vec!["tom".to_owned(), "hanks".to_owned()];
        let joint_name = idx.joint_atf(&pair, name, 1.0);
        let product = idx.atf("tom", name, 1.0) * idx.atf("hanks", name, 1.0);
        assert!(joint_name > product, "{joint_name} vs {product}");
        // "tom hanks" never co-occurs in a title.
        let joint_title = idx.joint_atf(&pair, title, 1.0);
        assert!(joint_name > joint_title);
        // Single-term joint degrades to plain ATF.
        assert_eq!(
            idx.joint_atf(&["tom".to_owned()], name, 1.0),
            idx.atf("tom", name, 1.0)
        );
        assert_eq!(idx.joint_atf(&[], name, 1.0), 0.0);
    }

    #[test]
    fn idf_prefers_selective_terms() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let title = aref(&db, "movie", "title");
        // "velocity" (df=1) is more selective than "terminal" (df=2).
        assert!(idx.idf("velocity", title) > idx.idf("terminal", title));
        // Unseen terms have maximal idf.
        assert!(idx.idf("zzz", title) >= idx.idf("velocity", title));
    }

    #[test]
    fn schema_matches_tables_and_attrs() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let actor = db.schema().table_id("actor").unwrap();
        assert_eq!(idx.schema_matches("actor"), &[SchemaTarget::Table(actor)]);
        let title_matches = idx.schema_matches("title");
        assert_eq!(title_matches.len(), 1);
        assert!(matches!(title_matches[0], SchemaTarget::Attribute(_)));
        assert!(idx.schema_matches("zzz").is_empty());
    }

    #[test]
    fn stats_counts() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let s = idx.attr_stats(name);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.total_tokens, 8);
        assert_eq!(s.vocabulary, 6);
        // Unindexed (int) attribute reports zeros.
        let year = aref(&db, "movie", "year");
        assert_eq!(idx.attr_stats(year), AttrStats::default());
        // Denominator matches the ATF normalization.
        assert_eq!(idx.atf_denominator(name, 1.0), 8.0 + 7.0);
    }

    #[test]
    fn stopwords_not_indexed() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let title = aref(&db, "movie", "title");
        assert_eq!(idx.df("the", title), 0); // "The Terminal"
        assert_eq!(idx.df("and", title), 0); // "Tom and Huck"
    }

    #[test]
    fn snapshot_roundtrip_is_observationally_identical() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let bytes = idx.snapshot_bytes().unwrap();
        let back = InvertedIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.term_count(), idx.term_count());
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        for attr in [name, title] {
            assert_eq!(back.attr_stats(attr), idx.attr_stats(attr));
            for term in ["tom", "hanks", "terminal", "huck", "zzz"] {
                assert_eq!(back.df(term, attr), idx.df(term, attr), "{term}");
                assert_eq!(
                    back.atf(term, attr, 1.0).to_bits(),
                    idx.atf(term, attr, 1.0).to_bits(),
                    "bit-exact ATF for {term}"
                );
                assert_eq!(back.attrs_containing(term), idx.attrs_containing(term));
            }
        }
        for term in ["actor", "title", "movie", "year"] {
            assert_eq!(back.schema_matches(term), idx.schema_matches(term));
        }
        assert_eq!(back.tokenizer().stopwords(), idx.tokenizer().stopwords());
        // Deterministic bytes: re-encoding the decoded index is identical.
        assert_eq!(back.snapshot_bytes().unwrap(), bytes);
    }

    #[test]
    fn snapshot_after_incremental_updates_matches_rebuild() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let r = db
            .insert(actor, vec![Value::Int(5), Value::text("Tom Stoppard")])
            .unwrap();
        idx.index_row(&db, actor, r);
        // The incrementally spliced index serializes byte-identically to a
        // from-scratch rebuild — the snapshot inherits the splice-equals-
        // rebuild guarantee.
        assert_eq!(
            idx.snapshot_bytes().unwrap(),
            InvertedIndex::build(&db).snapshot_bytes().unwrap()
        );
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let bytes = idx.snapshot_bytes().unwrap();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            InvertedIndex::from_snapshot_bytes(&wrong).unwrap_err(),
            keybridge_relstore::SnapshotError::BadMagic
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(InvertedIndex::from_snapshot_bytes(&flipped).is_err());
        for cut in (0..bytes.len()).step_by(7) {
            assert!(InvertedIndex::from_snapshot_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Deterministic xorshift PRNG so the property tests need no external
    /// crates and replay identically.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn packed_postings_match_vec_model() {
        // Property: a TermAttrEntry maintained through random in- and
        // out-of-order upserts agrees with a plain Vec<(RowId, u32)> model
        // on every observable — df, occurrences, decoded rows, tf probes —
        // and its packed bytes are canonical: re-encoding the model from
        // scratch in sorted order yields the identical buffer.
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for _case in 0..200 {
            let mut entry = TermAttrEntry::default();
            let mut model: Vec<(RowId, u32)> = Vec::new();
            let n = rng.below(40) as usize;
            for _ in 0..n {
                let row = RowId(rng.below(1 << 20) as u32);
                let tf = rng.below(5) as u32 + 1;
                entry.upsert(row, tf);
                match model.binary_search_by_key(&row, |&(r, _)| r) {
                    Ok(i) => model[i].1 += tf,
                    Err(i) => model.insert(i, (row, tf)),
                }
            }
            assert_eq!(entry.df(), model.len());
            assert_eq!(
                entry.occurrences,
                model.iter().map(|&(_, tf)| tf as u64).sum::<u64>()
            );
            assert_eq!(entry.rows().collect::<Vec<_>>(), model);
            for &(r, tf) in &model {
                assert_eq!(entry.tf(r), Some(tf));
            }
            assert_eq!(entry.tf(RowId(u32::MAX)), None);
            // Canonical bytes: sorted-order pushes produce the same buffer.
            let mut rebuilt = TermAttrEntry::default();
            for &(r, tf) in &model {
                rebuilt.push(r, tf);
            }
            assert_eq!(entry, rebuilt, "splice must equal rebuild");
        }
    }

    #[test]
    fn packed_postings_snapshot_roundtrip_property() {
        // Property: random entries survive the snapshot codec exactly —
        // from_packed accepts what push/upsert produced and reconstructs
        // the same entry, including the append fast-path base.
        let mut rng = XorShift(0x2545F4914F6CDD1D);
        for _case in 0..200 {
            let mut entry = TermAttrEntry::default();
            let n = rng.below(30) as usize;
            for _ in 0..n {
                entry.upsert(RowId(rng.below(1 << 16) as u32), rng.below(7) as u32 + 1);
            }
            let back = TermAttrEntry::from_packed(
                entry.repr,
                entry.packed.clone(),
                entry.df,
                entry.occurrences,
            )
            .unwrap();
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn from_packed_rejects_malformed_buffers() {
        use PostingsRepr::Gaps;
        let mut entry = TermAttrEntry::default();
        entry.push(RowId(3), 2);
        entry.push(RowId(9), 1);
        // Wrong df: trailing bytes after the declared postings.
        assert!(TermAttrEntry::from_packed(Gaps, entry.packed.clone(), 1, 3).is_err());
        // Wrong occurrence total.
        assert!(TermAttrEntry::from_packed(Gaps, entry.packed.clone(), 2, 4).is_err());
        // Truncated buffer.
        let cut = entry.packed[..entry.packed.len() - 1].to_vec();
        assert!(TermAttrEntry::from_packed(Gaps, cut, 2, 3).is_err());
        // Zero delta = non-increasing rows.
        let mut bad = Vec::new();
        put_varu32(&mut bad, 5);
        put_varu32(&mut bad, 1);
        put_varu32(&mut bad, 0);
        put_varu32(&mut bad, 1);
        assert!(TermAttrEntry::from_packed(Gaps, bad, 2, 2).is_err());
        // Varint overflowing u32.
        let over = vec![0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(TermAttrEntry::from_packed(Gaps, over, 1, 1).is_err());
    }

    /// A dense entry for the bitmap-repr tests: `df` consecutive-ish rows
    /// starting at `base` with tf = (row % 5) + 1.
    fn dense_entry(base: u32, df: u32) -> TermAttrEntry {
        let pairs: Vec<(RowId, u32)> = (0..df)
            .map(|i| (RowId(base + i * 2), (base + i * 2) % 5 + 1))
            .collect();
        TermAttrEntry::from_pairs(&pairs)
    }

    #[test]
    fn bitmap_repr_kicks_in_exactly_at_the_density_threshold() {
        // df = 16 rows over span 512 sits exactly on df*32 >= span.
        let spread = |df: u32, span: u32| -> TermAttrEntry {
            let mut pairs: Vec<(RowId, u32)> = (0..df - 1).map(|i| (RowId(i), 1)).collect();
            pairs.push((RowId(span - 1), 1)); // span = last - first + 1
            TermAttrEntry::from_pairs(&pairs)
        };
        assert_eq!(spread(16, 512).repr(), PostingsRepr::Bitmap);
        assert_eq!(spread(16, 513).repr(), PostingsRepr::Gaps);
        assert_eq!(spread(17, 513).repr(), PostingsRepr::Bitmap);
        // df below the floor stays gaps however dense.
        let tiny: Vec<(RowId, u32)> = (0..15).map(|i| (RowId(i), 1)).collect();
        assert_eq!(TermAttrEntry::from_pairs(&tiny).repr(), PostingsRepr::Gaps);
        // ...and one more row over the same span flips it.
        let full: Vec<(RowId, u32)> = (0..16).map(|i| (RowId(i), 1)).collect();
        assert_eq!(
            TermAttrEntry::from_pairs(&full).repr(),
            PostingsRepr::Bitmap
        );
    }

    #[test]
    fn bitmap_postings_match_vec_model() {
        // Property: entries maintained through random upserts over a dense
        // universe (rows below 600, up to 300 of them) agree with the Vec
        // model on every observable, land on the canonical repr of their
        // final set, and are byte-identical to a from-scratch rebuild —
        // whether that rebuild arrives by incremental pushes or one
        // from_pairs encode.
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        let mut saw_bitmap = false;
        for _case in 0..200 {
            let mut entry = TermAttrEntry::default();
            let mut model: Vec<(RowId, u32)> = Vec::new();
            let n = rng.below(300) as usize;
            for _ in 0..n {
                let row = RowId(rng.below(600) as u32);
                let tf = rng.below(5) as u32 + 1;
                entry.upsert(row, tf);
                match model.binary_search_by_key(&row, |&(r, _)| r) {
                    Ok(i) => model[i].1 += tf,
                    Err(i) => model.insert(i, (row, tf)),
                }
            }
            saw_bitmap |= entry.repr() == PostingsRepr::Bitmap;
            assert_eq!(entry.df(), model.len());
            assert_eq!(
                entry.occurrences,
                model.iter().map(|&(_, tf)| tf as u64).sum::<u64>()
            );
            assert_eq!(entry.rows().collect::<Vec<_>>(), model);
            for &(r, tf) in &model {
                assert_eq!(entry.tf(r), Some(tf));
            }
            assert_eq!(entry.tf(RowId(u32::MAX)), None);
            assert!(entry.is_canonical(), "repr must match the final set");
            let mut pushed = TermAttrEntry::default();
            for &(r, tf) in &model {
                pushed.push(r, tf);
            }
            assert_eq!(entry, pushed, "splice must equal push-rebuild");
            assert_eq!(
                entry,
                TermAttrEntry::from_pairs(&model),
                "splice must equal one-shot encode"
            );
            // Snapshot codec round-trip, canonicality check included.
            let back = TermAttrEntry::from_packed(
                entry.repr,
                entry.packed.clone(),
                entry.df,
                entry.occurrences,
            )
            .unwrap();
            assert_eq!(back, entry);
            assert!(back.is_canonical());
        }
        assert!(saw_bitmap, "dense universe must exercise the bitmap repr");
    }

    #[test]
    fn joint_rows_agree_across_repr_mixes() {
        // Property: for_each_joint_row (word-AND fast path, leapfrog-into-
        // bitmap, and pure gaps merge) matches a brute-force model
        // intersection for every repr mix.
        let mut rng = XorShift(0x2545F4914F6CDD1D);
        for case in 0..200 {
            let k = 2 + rng.below(3) as usize;
            let mut entries = Vec::new();
            let mut models: Vec<Vec<(RowId, u32)>> = Vec::new();
            for _ in 0..k {
                let dense = rng.below(2) == 0;
                let universe = if dense { 400 } else { 1 << 14 };
                let n = rng.below(if dense { 200 } else { 40 }) as usize;
                let mut model: Vec<(RowId, u32)> = Vec::new();
                for _ in 0..n {
                    let row = RowId(rng.below(universe) as u32);
                    let tf = rng.below(6) as u32 + 1;
                    match model.binary_search_by_key(&row, |&(r, _)| r) {
                        Ok(i) => model[i].1 += tf,
                        Err(i) => model.insert(i, (row, tf)),
                    }
                }
                entries.push(TermAttrEntry::from_pairs(&model));
                models.push(model);
            }
            let lists: Vec<&TermAttrEntry> = entries.iter().collect();
            let mut got = Vec::new();
            for_each_joint_row(&lists, |row, min_tf| {
                got.push((row, min_tf));
                true
            });
            let mut want = Vec::new();
            for &(row, tf0) in &models[0] {
                let mut min_tf = tf0;
                let mut everywhere = true;
                for m in &models[1..] {
                    match m.binary_search_by_key(&row, |&(r, _)| r) {
                        Ok(i) => min_tf = min_tf.min(m[i].1),
                        Err(_) => {
                            everywhere = false;
                            break;
                        }
                    }
                }
                if everywhere {
                    want.push((row, min_tf));
                }
            }
            assert_eq!(got, want, "case {case}");
            // Early exit stops after the first joint row on both paths.
            let mut first = None;
            for_each_joint_row(&lists, |row, min_tf| {
                first = Some((row, min_tf));
                false
            });
            assert_eq!(first, want.first().copied(), "case {case} early exit");
        }
    }

    #[test]
    fn from_packed_rejects_malformed_bitmap_buffers() {
        use PostingsRepr::Bitmap;
        let entry = dense_entry(100, 32);
        assert_eq!(entry.repr(), Bitmap);
        let (packed, df, occ) = (entry.packed.clone(), entry.df, entry.occurrences);
        // The well-formed buffer round-trips.
        assert!(TermAttrEntry::from_packed(Bitmap, packed.clone(), df, occ).is_ok());
        // Popcount must equal df.
        assert!(TermAttrEntry::from_packed(Bitmap, packed.clone(), df - 1, occ).is_err());
        // Occurrence total mismatch.
        assert!(TermAttrEntry::from_packed(Bitmap, packed.clone(), df, occ + 1).is_err());
        // Truncated tf stream.
        let cut = packed[..packed.len() - 1].to_vec();
        assert!(TermAttrEntry::from_packed(Bitmap, cut, df, occ).is_err());
        // Trailing garbage.
        let mut long = packed.clone();
        long.push(0);
        assert!(TermAttrEntry::from_packed(Bitmap, long, df, occ).is_err());
        // Base bit unset: the first word's bit 0 must be set.
        let mut unset = packed.clone();
        let mut pos = 0;
        read_varu32(&unset, &mut pos); // base
        read_varu32(&unset, &mut pos); // nwords
        assert_eq!(unset[pos] & 1, 1);
        unset[pos] &= !1;
        assert!(TermAttrEntry::from_packed(Bitmap, unset, df, occ).is_err());
        // Empty bitmap is never canonical.
        assert!(TermAttrEntry::from_packed(Bitmap, Vec::new(), 0, 0).is_err());
        // A trailing all-zero word (nwords not minimal) is rejected. Build
        // one by hand: base 0, 2 words, 16 rows all in word 0.
        let mut padded = Vec::new();
        put_varu32(&mut padded, 0);
        put_varu32(&mut padded, 2);
        padded.extend_from_slice(&0xFFFFu64.to_le_bytes());
        padded.extend_from_slice(&0u64.to_le_bytes());
        for _ in 0..16 {
            put_varu32(&mut padded, 1);
        }
        assert!(TermAttrEntry::from_packed(Bitmap, padded, 16, 16).is_err());
    }

    #[test]
    fn v2_snapshots_load_and_canonicalize() {
        // A version-2 snapshot (gap-encoded entries, no repr tag) of an
        // index whose dense entries would canonically be bitmaps must load,
        // upgrade those entries, and re-snapshot byte-identically to a
        // fresh v3 encode of the same index.
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        // Bulk up "tom" in actor.name until its postings go dense.
        let mut idx = InvertedIndex::build(&db);
        for i in 0..40 {
            let r = db
                .insert(actor, vec![Value::Int(100 + i), Value::text("Tom Surname")])
                .unwrap();
            idx.index_row(&db, actor, r);
        }
        let name = aref(&db, "actor", "name");
        assert_eq!(
            idx.postings("tom", name).unwrap().repr(),
            PostingsRepr::Bitmap
        );
        let v3 = idx.snapshot_bytes().unwrap();
        // Re-encode the snapshot as version 2 by hand: rewrite the version
        // word and re-emit the dictionary section with gap-encoded entries
        // and no repr tags.
        let mut v2 = Vec::new();
        v2.extend_from_slice(IDX_MAGIC);
        put_u32(&mut v2, 2);
        let mut c = Cursor::new(&v3);
        c.take(8).unwrap();
        c.u32().unwrap();
        put_section(&mut v2, SEC_TOKENIZER, c.section(SEC_TOKENIZER).unwrap());
        put_section(&mut v2, SEC_ATTR_STATS, c.section(SEC_ATTR_STATS).unwrap());
        let mut sec = Vec::new();
        let mut terms: Vec<&String> = idx.dict.keys().collect();
        terms.sort_unstable();
        put_varu32(&mut sec, terms.len() as u32);
        for term in terms {
            let entry = &idx.dict[term];
            put_str(&mut sec, term).unwrap();
            put_varu32(&mut sec, entry.attrs.len() as u32);
            for (aref, posting) in entry.attrs.iter().zip(&entry.postings) {
                put_attr_ref(&mut sec, *aref);
                put_varu64(&mut sec, posting.occurrences);
                put_varu32(&mut sec, posting.df);
                // v2 stored every entry gap-encoded.
                let pairs: Vec<(RowId, u32)> = posting.rows().collect();
                let mut gaps = Vec::new();
                let mut prev = 0;
                for (i, &(r, tf)) in pairs.iter().enumerate() {
                    put_varu32(&mut gaps, if i == 0 { r.0 } else { r.0 - prev });
                    put_varu32(&mut gaps, tf);
                    prev = r.0;
                }
                put_varu32(&mut sec, gaps.len() as u32);
                sec.extend_from_slice(&gaps);
            }
        }
        put_section(&mut v2, SEC_DICT, &sec);
        c.section(SEC_DICT).unwrap(); // skip the v3 dictionary (cursor is sequential)
        put_section(
            &mut v2,
            SEC_SCHEMA_TERMS,
            c.section(SEC_SCHEMA_TERMS).unwrap(),
        );
        let back = InvertedIndex::from_snapshot_bytes(&v2).unwrap();
        assert_eq!(
            back.postings("tom", name).unwrap().repr(),
            PostingsRepr::Bitmap,
            "dense v2 entry must canonicalize to bitmap on load"
        );
        assert_eq!(back.snapshot_bytes().unwrap(), v3);
    }

    #[test]
    fn v3_snapshot_rejects_non_canonical_repr_tag() {
        // Flip one dense entry of a real snapshot back to gap encoding
        // (keeping its v3 tag byte consistent with the bytes) — the loader
        // must reject the non-canonical repr choice.
        let entry = dense_entry(0, 32);
        assert_eq!(entry.repr(), PostingsRepr::Bitmap);
        let pairs: Vec<(RowId, u32)> = entry.rows().collect();
        let mut gaps = Vec::new();
        let mut prev = 0;
        for (i, &(r, tf)) in pairs.iter().enumerate() {
            put_varu32(&mut gaps, if i == 0 { r.0 } else { r.0 - prev });
            put_varu32(&mut gaps, tf);
            prev = r.0;
        }
        let decoded =
            TermAttrEntry::from_packed(PostingsRepr::Gaps, gaps, entry.df, entry.occurrences)
                .unwrap();
        assert!(
            !decoded.is_canonical(),
            "a dense gaps entry is structurally valid but non-canonical"
        );
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let path = std::env::temp_dir().join(format!(
            "keybridge-index-snapshot-test-{}.kb",
            std::process::id()
        ));
        idx.save_snapshot(&path).unwrap();
        let back = InvertedIndex::load_snapshot(&path).unwrap();
        assert_eq!(
            back.snapshot_bytes().unwrap(),
            idx.snapshot_bytes().unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }
}
