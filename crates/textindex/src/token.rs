//! Tokenization of attribute values and keyword queries.
//!
//! The tokenizer is intentionally simple and shared between indexing and
//! query parsing so both sides agree on term boundaries: lowercase, split on
//! any non-alphanumeric character, drop empty segments, optionally drop
//! stopwords. No stemming — the paper's systems index raw terms (§2.2.1
//! mentions normalization as optional).

use std::collections::HashSet;

/// Default English stopwords. Short on purpose: over-aggressive stopword
/// removal would delete meaningful one-word titles.
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "to", "with",
];

/// A configurable tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stopwords: HashSet<String>,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl Tokenizer {
    /// Tokenizer with the default stopword list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizer that keeps every token (used for keyword queries, where the
    /// user's words are sacred; "The Terminal" should keep "the" if typed).
    pub fn keep_all() -> Self {
        Tokenizer {
            stopwords: HashSet::new(),
        }
    }

    /// Tokenizer with an explicit stopword list (snapshot reload: a stored
    /// index must tokenize future rows exactly as the original did).
    pub fn with_stopwords<I>(stopwords: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        Tokenizer {
            stopwords: stopwords.into_iter().collect(),
        }
    }

    /// The stopword list, sorted — a deterministic rendering of the
    /// tokenizer's only configuration, used by the index snapshot.
    pub fn stopwords(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.stopwords.iter().map(String::as_str).collect();
        out.sort_unstable();
        out
    }

    /// Whether `term` is a stopword under this tokenizer.
    pub fn is_stopword(&self, term: &str) -> bool {
        self.stopwords.contains(term)
    }

    /// Tokenize `text` into lowercase terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                cur.extend(ch.to_lowercase());
            } else if !cur.is_empty() {
                if !self.stopwords.contains(&cur) {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
        }
        if !cur.is_empty() && !self.stopwords.contains(&cur) {
            out.push(cur);
        }
        out
    }

    /// Tokenize and deduplicate, preserving first-seen order.
    pub fn tokenize_unique(&self, text: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        self.tokenize(text)
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split_and_lowercase() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("Tom Hanks"), vec!["tom", "hanks"]);
        assert_eq!(t.tokenize("Top-Gun (1986)!"), vec!["top", "gun", "1986"]);
        assert_eq!(t.tokenize(""), Vec::<String>::new());
        assert_eq!(t.tokenize("  ,,  "), Vec::<String>::new());
    }

    #[test]
    fn stopwords_removed_by_default() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("The Terminal"), vec!["terminal"]);
        assert_eq!(
            t.tokenize("Joe versus the Volcano"),
            vec!["joe", "versus", "volcano"]
        );
        assert!(t.is_stopword("the"));
        assert!(!t.is_stopword("terminal"));
    }

    #[test]
    fn keep_all_keeps_stopwords() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("The Terminal"), vec!["the", "terminal"]);
        assert!(!t.is_stopword("the"));
    }

    #[test]
    fn unicode_lowercasing() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("Škoda Österreich"), vec!["škoda", "österreich"]);
    }

    #[test]
    fn unique_dedup_preserves_order() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize_unique("tom tom hanks tom"), vec!["tom", "hanks"]);
    }

    #[test]
    fn stopwords_roundtrip_through_accessors() {
        let t = Tokenizer::new();
        let words: Vec<String> = t.stopwords().iter().map(|s| s.to_string()).collect();
        assert_eq!(words.len(), DEFAULT_STOPWORDS.len());
        assert!(words.windows(2).all(|w| w[0] < w[1]), "sorted");
        let back = Tokenizer::with_stopwords(words);
        assert_eq!(back.stopwords(), t.stopwords());
        assert_eq!(back.tokenize("The Terminal"), t.tokenize("The Terminal"));
        assert!(Tokenizer::with_stopwords(Vec::new()).stopwords().is_empty());
    }

    #[test]
    fn digits_kept() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("2001: A Space Odyssey"),
            vec!["2001", "space", "odyssey"]
        );
    }
}
