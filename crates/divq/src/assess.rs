//! Simulated relevance assessments, standing in for the §4.6.2 user study.
//!
//! The study had 16 participants judge, on a two-point Likert scale, whether
//! each candidate interpretation could reflect the informational need behind
//! a keyword query; per-interpretation relevance is the participant average,
//! and inter-assessor agreement was low (κ ≈ 0.3) because the queries were
//! chosen to be ambiguous.
//!
//! The simulation reproduces that setup: each virtual assessor draws an
//! *intent* from the interpretation distribution (flattened by a temperature
//! so assessors disagree), marks the intent relevant, and marks every other
//! interpretation relevant with probability proportional to its structural
//! similarity to the intent plus independent noise. The output is the
//! per-interpretation mean vote — graded relevance in `[0, 1]` correlated
//! with, but not identical to, the model probability.

use crate::diversify::jaccard;
use keybridge_core::BindingAtom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Assessor-population knobs.
#[derive(Debug, Clone, Copy)]
pub struct AssessConfig {
    pub seed: u64,
    /// Number of virtual assessors (16 in the study).
    pub n_users: usize,
    /// Softmax temperature over interpretation probabilities; > 1 flattens,
    /// making assessors disagree more.
    pub temperature: f64,
    /// Probability of voting relevant for an interpretation structurally
    /// similar to the assessor's intent, scaled by Jaccard similarity.
    pub agree_with_similar: f64,
    /// Background noise: probability of a spurious relevant vote.
    pub noise: f64,
}

impl Default for AssessConfig {
    fn default() -> Self {
        AssessConfig {
            seed: 7,
            n_users: 16,
            temperature: 2.0,
            agree_with_similar: 0.8,
            noise: 0.05,
        }
    }
}

/// Produce graded relevance for `items = (probability, atom set)` pairs.
pub fn simulate_assessments(items: &[(f64, BTreeSet<BindingAtom>)], cfg: AssessConfig) -> Vec<f64> {
    if items.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Temperature-flattened intent distribution.
    let weights: Vec<f64> = items
        .iter()
        .map(|(p, _)| p.max(1e-12).powf(1.0 / cfg.temperature))
        .collect();
    let total: f64 = weights.iter().sum();

    let mut votes = vec![0usize; items.len()];
    for _ in 0..cfg.n_users {
        // Draw this assessor's intent.
        let mut u = rng.gen_range(0.0..total);
        let mut intent = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                intent = i;
                break;
            }
            u -= w;
        }
        for (i, (_, atoms)) in items.iter().enumerate() {
            let p_yes = if i == intent {
                1.0
            } else {
                let sim = jaccard(&items[intent].1, atoms);
                (cfg.agree_with_similar * sim + cfg.noise).min(1.0)
            };
            if rng.gen_bool(p_yes) {
                votes[i] += 1;
            }
        }
    }
    votes
        .into_iter()
        .map(|v| v as f64 / cfg.n_users as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::BindingAtomKind;
    use keybridge_relstore::{AttrId, AttrRef, TableId};

    fn atom(table: u32, kw: &str) -> BindingAtom {
        BindingAtom {
            keyword: kw.to_owned(),
            kind: BindingAtomKind::Value,
            attr: AttrRef {
                table: TableId(table),
                attr: AttrId(1),
            },
        }
    }

    fn items() -> Vec<(f64, BTreeSet<BindingAtom>)> {
        vec![
            (0.7, [atom(0, "hanks")].into_iter().collect()),
            (0.2, [atom(1, "hanks")].into_iter().collect()),
            (0.1, [atom(2, "hanks")].into_iter().collect()),
        ]
    }

    #[test]
    fn relevance_in_unit_interval_and_correlated() {
        let rel = simulate_assessments(&items(), AssessConfig::default());
        assert_eq!(rel.len(), 3);
        for r in &rel {
            assert!((0.0..=1.0).contains(r));
        }
        // The probable interpretation should collect the most votes.
        assert!(rel[0] >= rel[2], "{rel:?}");
    }

    #[test]
    fn deterministic() {
        let a = simulate_assessments(&items(), AssessConfig::default());
        let b = simulate_assessments(&items(), AssessConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn disagreement_exists() {
        // With temperature flattening, minor interpretations still get some
        // votes across a population — graded, not binary, relevance.
        let rel = simulate_assessments(
            &items(),
            AssessConfig {
                n_users: 200,
                ..Default::default()
            },
        );
        assert!(rel[1] > 0.0);
        assert!(rel[0] < 1.0 || rel[1] < 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(simulate_assessments(&[], AssessConfig::default()).is_empty());
    }
}
