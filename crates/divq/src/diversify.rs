//! The diversification scheme (§4.4): Jaccard similarity between query
//! interpretations and the greedy relevance/novelty selection of Alg. 4.1.

use keybridge_core::{
    execute_interpretation_cached, BindingAtom, ExecCache, ResultKey, ScoredInterpretation,
    TemplateCatalog,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{Database, ExecOptions, ExecStats};
use std::collections::BTreeSet;

/// One candidate for diversification: an interpretation's relevance score
/// and its set of keyword interpretations (schema-level atoms).
#[derive(Debug, Clone)]
pub struct DivItem {
    /// Relevance = `P(Q|K)` from the disambiguation model (§4.4.2).
    pub relevance: f64,
    /// The keyword-interpretation set `I` of Eq. 4.3.
    pub atoms: BTreeSet<BindingAtom>,
}

/// Build the diversification pool from ranked interpretations — typically
/// the interpreter's `top_k(query, k)` output, which is exactly the DivQ
/// candidate pool (§4.4.2: complete and partial interpretations, best
/// first). Relevance is the ranked probability; atoms are the schema-level
/// keyword interpretations.
pub fn div_pool(ranked: &[ScoredInterpretation], catalog: &TemplateCatalog) -> Vec<DivItem> {
    ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(catalog).into_iter().collect(),
        })
        .collect()
}

/// Build the diversification pool *with executed results*: each ranked
/// interpretation is run through the batched hash-join executor (at most
/// `limit` JTTs), interpretations with empty results are dropped (the DivQ
/// zero-probability condition, §4.4.1), and one shared [`ExecCache`] keeps
/// predicates common across the pool intersected once. Returns the
/// surviving pool items, their result-key sets (the subtopics of the
/// Chapter 4 metrics), and the aggregated executor counters.
pub fn executed_div_pool(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    ranked: &[ScoredInterpretation],
    limit: usize,
) -> (Vec<DivItem>, Vec<BTreeSet<ResultKey>>, ExecStats) {
    let mut cache = ExecCache::new();
    let opts = ExecOptions {
        limit,
        ..Default::default()
    };
    let mut items = Vec::new();
    let mut keys = Vec::new();
    let mut stats = ExecStats::default();
    for s in ranked {
        let Ok(result) =
            execute_interpretation_cached(db, index, catalog, &s.interpretation, opts, &mut cache)
        else {
            continue;
        };
        stats.absorb(&result.stats);
        if result.is_empty() {
            continue;
        }
        items.push(DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(catalog).into_iter().collect(),
        });
        keys.push(result.keys.clone());
    }
    (items, keys, stats)
}

/// Jaccard coefficient between two atom sets (Eq. 4.3). Two empty sets are
/// defined maximally similar (they describe the same — empty — query).
pub fn jaccard(a: &BTreeSet<BindingAtom>, b: &BTreeSet<BindingAtom>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Diversification knobs.
#[derive(Debug, Clone, Copy)]
pub struct DiversifyConfig {
    /// Trade-off: 1.0 = pure relevance, 0.5 = balanced, < 0.5 emphasizes
    /// novelty (Eq. 4.4). The Chapter 4 experiments use λ = 0.1.
    pub lambda: f64,
    /// Number of interpretations to select.
    pub k: usize,
}

impl Default for DiversifyConfig {
    fn default() -> Self {
        DiversifyConfig { lambda: 0.1, k: 10 }
    }
}

/// Alg. 4.1: select `cfg.k` relevant-and-diverse items from `items`, which
/// must be sorted by relevance descending (the top-k of the ranker).
/// Returns indexes into `items` in selection order.
///
/// Relevance and similarity are normalized to equal means before the
/// λ-weighting (the note under Eq. 4.4), and the scan for each next element
/// stops early once `best_score > λ · relevance(L[j])` can no longer be
/// beaten — the upper-bound pruning of the paper's pseudo-code.
pub fn diversify(items: &[DivItem], cfg: DiversifyConfig) -> Vec<usize> {
    let n = items.len();
    if n == 0 || cfg.k == 0 {
        return Vec::new();
    }
    debug_assert!(
        items.windows(2).all(|w| w[0].relevance >= w[1].relevance),
        "items must be sorted by relevance descending"
    );

    // Normalization to equal means. Mean similarity is estimated over all
    // pairs of the candidate list (the population the selection draws from).
    let mean_rel = items.iter().map(|i| i.relevance).sum::<f64>() / n as f64;
    let mut sim_sum = 0.0;
    let mut sim_cnt = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sim_sum += jaccard(&items[i].atoms, &items[j].atoms);
            sim_cnt += 1;
        }
    }
    let mean_sim = if sim_cnt > 0 {
        sim_sum / sim_cnt as f64
    } else {
        0.0
    };
    let rel_scale = if mean_rel > 0.0 { 1.0 / mean_rel } else { 1.0 };
    let sim_scale = if mean_sim > 0.0 { 1.0 / mean_sim } else { 1.0 };

    let lambda = cfg.lambda;
    let mut selected: Vec<usize> = vec![0]; // most relevant always first
    let mut available: Vec<usize> = (1..n).collect();

    while selected.len() < cfg.k.min(n) {
        let mut best_score = f64::NEG_INFINITY;
        let mut best_pos = 0usize;
        for (pos, &j) in available.iter().enumerate() {
            let rel = items[j].relevance * rel_scale;
            // Upper bound: diversity penalty is ≥ 0, so score(j) ≤ λ·rel(j).
            // `available` is relevance-sorted, so once the bound falls below
            // the incumbent nothing later can win.
            if best_score > lambda * rel {
                break;
            }
            let avg_sim = selected
                .iter()
                .map(|&s| jaccard(&items[s].atoms, &items[j].atoms))
                .sum::<f64>()
                / selected.len() as f64;
            let score = lambda * rel - (1.0 - lambda) * avg_sim * sim_scale;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        let chosen = available.remove(best_pos);
        selected.push(chosen);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::BindingAtomKind;
    use keybridge_relstore::{AttrId, AttrRef, TableId};

    fn atom(table: u32, attr: u32, kw: &str) -> BindingAtom {
        BindingAtom {
            keyword: kw.to_owned(),
            kind: BindingAtomKind::Value,
            attr: AttrRef {
                table: TableId(table),
                attr: AttrId(attr),
            },
        }
    }

    fn set(atoms: &[BindingAtom]) -> BTreeSet<BindingAtom> {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn jaccard_basics() {
        let a = set(&[atom(0, 1, "x"), atom(0, 2, "y")]);
        let b = set(&[atom(0, 1, "x"), atom(1, 1, "y")]);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn most_relevant_always_first() {
        let items = vec![
            DivItem {
                relevance: 0.9,
                atoms: set(&[atom(0, 1, "x")]),
            },
            DivItem {
                relevance: 0.5,
                atoms: set(&[atom(1, 1, "x")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.1, k: 2 });
        assert_eq!(sel[0], 0);
    }

    #[test]
    fn redundant_runner_up_demoted() {
        // Item 1 nearly duplicates item 0; item 2 is different but less
        // relevant. With novelty-heavy λ the diverse item wins slot 2.
        let items = vec![
            DivItem {
                relevance: 0.9,
                atoms: set(&[atom(0, 1, "hanks"), atom(0, 1, "tom")]),
            },
            DivItem {
                relevance: 0.8,
                atoms: set(&[atom(0, 1, "hanks"), atom(0, 1, "tom")]),
            },
            DivItem {
                relevance: 0.4,
                atoms: set(&[atom(2, 1, "hanks"), atom(3, 1, "tom")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.1, k: 3 });
        assert_eq!(sel, vec![0, 2, 1]);
        // Pure relevance keeps the original order.
        let sel_rel = diversify(&items, DiversifyConfig { lambda: 1.0, k: 3 });
        assert_eq!(sel_rel, vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_n_selects_all() {
        let items = vec![
            DivItem {
                relevance: 0.6,
                atoms: set(&[atom(0, 1, "a")]),
            },
            DivItem {
                relevance: 0.4,
                atoms: set(&[atom(1, 1, "a")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.5, k: 10 });
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(diversify(&[], DiversifyConfig::default()).is_empty());
        let items = vec![DivItem {
            relevance: 1.0,
            atoms: BTreeSet::new(),
        }];
        assert!(diversify(&items, DiversifyConfig { lambda: 0.5, k: 0 }).is_empty());
    }

    #[test]
    fn early_stop_matches_exhaustive_scan() {
        // The upper-bound pruning must not change the outcome.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(3..20);
            let mut items: Vec<DivItem> = (0..n)
                .map(|_| {
                    let n_atoms = rng.gen_range(1..4);
                    let atoms: BTreeSet<BindingAtom> = (0..n_atoms)
                        .map(|_| {
                            atom(
                                rng.gen_range(0..4),
                                rng.gen_range(0..3),
                                ["a", "b", "c"][rng.gen_range(0..3usize)],
                            )
                        })
                        .collect();
                    DivItem {
                        relevance: rng.gen_range(0.01..1.0),
                        atoms,
                    }
                })
                .collect();
            items.sort_by(|a, b| b.relevance.partial_cmp(&a.relevance).unwrap());
            let cfg = DiversifyConfig { lambda: 0.3, k: 5 };
            let fast = diversify(&items, cfg);
            let slow = diversify_reference(&items, cfg);
            assert_eq!(fast, slow);
        }
    }

    /// Reference implementation without the early-stop bound.
    fn diversify_reference(items: &[DivItem], cfg: DiversifyConfig) -> Vec<usize> {
        let n = items.len();
        if n == 0 || cfg.k == 0 {
            return Vec::new();
        }
        let mean_rel = items.iter().map(|i| i.relevance).sum::<f64>() / n as f64;
        let mut sim_sum = 0.0;
        let mut cnt = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sim_sum += jaccard(&items[i].atoms, &items[j].atoms);
                cnt += 1;
            }
        }
        let mean_sim = if cnt > 0 { sim_sum / cnt as f64 } else { 0.0 };
        let rel_scale = if mean_rel > 0.0 { 1.0 / mean_rel } else { 1.0 };
        let sim_scale = if mean_sim > 0.0 { 1.0 / mean_sim } else { 1.0 };
        let mut selected = vec![0usize];
        let mut avail: Vec<usize> = (1..n).collect();
        while selected.len() < cfg.k.min(n) {
            let (pos, _) = avail
                .iter()
                .enumerate()
                .map(|(pos, &j)| {
                    let avg = selected
                        .iter()
                        .map(|&s| jaccard(&items[s].atoms, &items[j].atoms))
                        .sum::<f64>()
                        / selected.len() as f64;
                    (
                        pos,
                        cfg.lambda * items[j].relevance * rel_scale
                            - (1.0 - cfg.lambda) * avg * sim_scale,
                    )
                })
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Ties: prefer the earlier (more relevant) item,
                        // i.e. the SMALLER position, matching the scan order
                        // of the fast implementation.
                        .then(b.0.cmp(&a.0))
                })
                .unwrap();
            selected.push(avail.remove(pos));
        }
        selected
    }
}
