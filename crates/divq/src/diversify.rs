//! The diversification scheme (§4.4): Jaccard similarity between query
//! interpretations and the greedy relevance/novelty selection of Alg. 4.1.
//!
//! The algorithmic core ([`DivItem`], [`jaccard`], [`diversify`],
//! [`div_pool`]) lives in `keybridge_core::pipeline` so the concurrent
//! serving layer can run it (`SearchService::search_diversified`); this
//! module re-exports it and keeps the *offline* pool builder —
//! [`executed_div_pool`] — which is the cold single-threaded oracle the
//! served mode is differentially tested against.

pub use keybridge_core::{div_pool, diversify, jaccard, DivItem, DiversifyConfig};

use keybridge_core::{
    ExecCache, Interpreter, InterpreterConfig, NonemptyCache, QueryPipeline, ResultKey,
    ScoredInterpretation, TemplateCatalog,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{Database, ExecOptions, ExecStats};
use std::collections::BTreeSet;

/// Execution knobs of the diversification pool build.
#[derive(Debug, Clone, Copy)]
pub struct DivExecOptions {
    /// Materialization cap: JTTs executed per pool interpretation. Bounds
    /// the work a single broad interpretation can cost the pool; result
    /// keys (the Chapter 4 subtopics) are computed over at most this many
    /// tuple trees.
    pub limit: usize,
}

impl Default for DivExecOptions {
    fn default() -> Self {
        // The historical hardcoded cap of the Chapter 4 experiment harness.
        DivExecOptions { limit: 500 }
    }
}

/// Build the diversification pool *with executed results*: each ranked
/// interpretation is run through the batched hash-join executor (at most
/// `opts.limit` JTTs), interpretations with empty results are dropped (the
/// DivQ zero-probability condition, §4.4.1), and one shared [`ExecCache`]
/// keeps predicates common across the pool intersected once. Returns the
/// surviving pool items, their result-key sets (the subtopics of the
/// Chapter 4 metrics), and the aggregated executor counters.
pub fn executed_div_pool(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    ranked: &[ScoredInterpretation],
    opts: DivExecOptions,
) -> (Vec<DivItem>, Vec<BTreeSet<ResultKey>>, ExecStats) {
    let mut cache = ExecCache::new();
    executed_div_pool_with(db, index, catalog, ranked, opts, &mut cache)
}

/// [`executed_div_pool`] over an explicit [`ExecCache`] — the cached
/// executor seam of the [`QueryPipeline`]. A cache built with
/// `ExecCache::with_shared` falls through to a service's process-wide tier;
/// either way the surviving items and key sets are byte-identical to the
/// plain-cache run (complete cache hits are truncated back to the cap).
pub fn executed_div_pool_with(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    ranked: &[ScoredInterpretation],
    opts: DivExecOptions,
    cache: &mut ExecCache,
) -> (Vec<DivItem>, Vec<BTreeSet<ResultKey>>, ExecStats) {
    let interpreter = Interpreter::new(db, index, catalog, InterpreterConfig::default());
    let mut gen_cache = NonemptyCache::new();
    let pool = QueryPipeline::new(&interpreter, ExecOptions::default(), &mut gen_cache, cache)
        .executed_pool(ranked, opts.limit);
    (pool.items, pool.keys, pool.stats.exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::{BindingAtom, BindingAtomKind};
    use keybridge_relstore::{AttrId, AttrRef, TableId};

    fn atom(table: u32, attr: u32, kw: &str) -> BindingAtom {
        BindingAtom {
            keyword: kw.to_owned(),
            kind: BindingAtomKind::Value,
            attr: AttrRef {
                table: TableId(table),
                attr: AttrId(attr),
            },
        }
    }

    fn set(atoms: &[BindingAtom]) -> BTreeSet<BindingAtom> {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn jaccard_basics() {
        let a = set(&[atom(0, 1, "x"), atom(0, 2, "y")]);
        let b = set(&[atom(0, 1, "x"), atom(1, 1, "y")]);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn most_relevant_always_first() {
        let items = vec![
            DivItem {
                relevance: 0.9,
                atoms: set(&[atom(0, 1, "x")]),
            },
            DivItem {
                relevance: 0.5,
                atoms: set(&[atom(1, 1, "x")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.1, k: 2 });
        assert_eq!(sel[0], 0);
    }

    #[test]
    fn redundant_runner_up_demoted() {
        // Item 1 nearly duplicates item 0; item 2 is different but less
        // relevant. With novelty-heavy λ the diverse item wins slot 2.
        let items = vec![
            DivItem {
                relevance: 0.9,
                atoms: set(&[atom(0, 1, "hanks"), atom(0, 1, "tom")]),
            },
            DivItem {
                relevance: 0.8,
                atoms: set(&[atom(0, 1, "hanks"), atom(0, 1, "tom")]),
            },
            DivItem {
                relevance: 0.4,
                atoms: set(&[atom(2, 1, "hanks"), atom(3, 1, "tom")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.1, k: 3 });
        assert_eq!(sel, vec![0, 2, 1]);
        // Pure relevance keeps the original order.
        let sel_rel = diversify(&items, DiversifyConfig { lambda: 1.0, k: 3 });
        assert_eq!(sel_rel, vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_n_selects_all() {
        let items = vec![
            DivItem {
                relevance: 0.6,
                atoms: set(&[atom(0, 1, "a")]),
            },
            DivItem {
                relevance: 0.4,
                atoms: set(&[atom(1, 1, "a")]),
            },
        ];
        let sel = diversify(&items, DiversifyConfig { lambda: 0.5, k: 10 });
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(diversify(&[], DiversifyConfig::default()).is_empty());
        let items = vec![DivItem {
            relevance: 1.0,
            atoms: BTreeSet::new(),
        }];
        assert!(diversify(&items, DiversifyConfig { lambda: 0.5, k: 0 }).is_empty());
    }

    #[test]
    fn div_exec_options_default_keeps_the_historical_cap() {
        assert_eq!(DivExecOptions::default().limit, 500);
    }

    #[test]
    fn early_stop_matches_exhaustive_scan() {
        // The upper-bound pruning must not change the outcome.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(3..20);
            let mut items: Vec<DivItem> = (0..n)
                .map(|_| {
                    let n_atoms = rng.gen_range(1..4);
                    let atoms: BTreeSet<BindingAtom> = (0..n_atoms)
                        .map(|_| {
                            atom(
                                rng.gen_range(0..4),
                                rng.gen_range(0..3),
                                ["a", "b", "c"][rng.gen_range(0..3usize)],
                            )
                        })
                        .collect();
                    DivItem {
                        relevance: rng.gen_range(0.01..1.0),
                        atoms,
                    }
                })
                .collect();
            items.sort_by(|a, b| b.relevance.partial_cmp(&a.relevance).unwrap());
            let cfg = DiversifyConfig { lambda: 0.3, k: 5 };
            let fast = diversify(&items, cfg);
            let slow = diversify_reference(&items, cfg);
            assert_eq!(fast, slow);
        }
    }

    /// Reference implementation without the early-stop bound.
    fn diversify_reference(items: &[DivItem], cfg: DiversifyConfig) -> Vec<usize> {
        let n = items.len();
        if n == 0 || cfg.k == 0 {
            return Vec::new();
        }
        let mean_rel = items.iter().map(|i| i.relevance).sum::<f64>() / n as f64;
        let mut sim_sum = 0.0;
        let mut cnt = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sim_sum += jaccard(&items[i].atoms, &items[j].atoms);
                cnt += 1;
            }
        }
        let mean_sim = if cnt > 0 { sim_sum / cnt as f64 } else { 0.0 };
        let rel_scale = if mean_rel > 0.0 { 1.0 / mean_rel } else { 1.0 };
        let sim_scale = if mean_sim > 0.0 { 1.0 / mean_sim } else { 1.0 };
        let mut selected = vec![0usize];
        let mut avail: Vec<usize> = (1..n).collect();
        while selected.len() < cfg.k.min(n) {
            let (pos, _) = avail
                .iter()
                .enumerate()
                .map(|(pos, &j)| {
                    let avg = selected
                        .iter()
                        .map(|&s| jaccard(&items[s].atoms, &items[j].atoms))
                        .sum::<f64>()
                        / selected.len() as f64;
                    (
                        pos,
                        cfg.lambda * items[j].relevance * rel_scale
                            - (1.0 - cfg.lambda) * avg * sim_scale,
                    )
                })
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Ties: prefer the earlier (more relevant) item,
                        // i.e. the SMALLER position, matching the scan order
                        // of the fast implementation.
                        .then(b.0.cmp(&a.0))
                })
                .unwrap();
            selected.push(avail.remove(pos));
        }
        selected
    }
}
