//! # keybridge-divq
//!
//! DivQ: diversification of keyword-search results over structured data
//! (Chapter 4).
//!
//! DivQ re-ranks the query interpretations produced by [`keybridge_core`]
//! *before* any results are materialized: relevance comes from the
//! probabilistic disambiguation model, novelty from the structural
//! dissimilarity between interpretations. The crate provides:
//!
//! * [`jaccard`] / [`DivItem`] — interpretation similarity as the Jaccard
//!   coefficient over keyword-interpretation sets (Eq. 4.3);
//! * [`diversify`] — the greedy top-k selection of Alg. 4.1 with the
//!   λ-weighted relevance/novelty score (Eq. 4.4) and its score upper-bound
//!   early termination;
//! * [`metrics`] — α-nDCG-W (Eqs. 4.5–4.6) and WS-recall (Eq. 4.7), the
//!   paper's graded-relevance, overlap-aware adaptations of α-nDCG and
//!   S-recall, plus the unweighted originals for comparison;
//! * [`assess`] — a simulated assessor population standing in for the
//!   §4.6.2 user study (16 participants, two-point Likert scale, partial
//!   agreement).

pub mod assess;
pub mod diversify;
pub mod metrics;

pub use assess::{simulate_assessments, AssessConfig};
pub use diversify::{
    div_pool, diversify, executed_div_pool, executed_div_pool_with, jaccard, DivExecOptions,
    DivItem, DiversifyConfig,
};
pub use metrics::{alpha_ndcg_w, s_recall, ws_recall, EvalItem};
