//! Evaluation metrics adapted to structured-data diversification (§4.5):
//! α-nDCG-W (graded relevance + result overlap, Eqs. 4.5–4.6) and WS-recall
//! (graded subtopic recall, Eq. 4.7), plus the unweighted S-recall original
//! for comparison.

use keybridge_core::ResultKey;
use std::collections::{BTreeSet, HashMap};

/// One ranked item for evaluation: an interpretation's graded relevance
/// (averaged user assessments) and the primary keys its execution returns
/// (its information nuggets / subtopics).
#[derive(Debug, Clone)]
pub struct EvalItem {
    pub relevance: f64,
    pub keys: BTreeSet<ResultKey>,
}

/// Gain vector of Eq. 4.5: `G[k] = relevance(Q_k) · (1−α)^r` where `r`
/// counts, over the primary keys of `Q_k`, how many earlier interpretations
/// already returned each key (Eq. 4.6).
fn gains(ranked: &[EvalItem], alpha: f64) -> Vec<f64> {
    let mut seen: HashMap<ResultKey, usize> = HashMap::new();
    let mut out = Vec::with_capacity(ranked.len());
    for item in ranked {
        let r: usize = item
            .keys
            .iter()
            .map(|k| seen.get(k).copied().unwrap_or(0))
            .sum();
        out.push(item.relevance * (1.0 - alpha).powi(r as i32));
        for k in &item.keys {
            *seen.entry(*k).or_insert(0) += 1;
        }
    }
    out
}

fn dcg(gains: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    gains
        .iter()
        .enumerate()
        .map(|(i, g)| {
            acc += g / ((i + 2) as f64).log2(); // discount log2(1 + rank)
            acc
        })
        .collect()
}

/// Ideal ordering for normalization: greedily pick from `pool` the item with
/// the highest overlap-discounted gain at each position (the standard ideal
/// construction for α-nDCG, here with graded relevance).
fn ideal_gains(pool: &[EvalItem], alpha: f64, k: usize) -> Vec<f64> {
    let mut remaining: Vec<&EvalItem> = pool.iter().collect();
    let mut seen: HashMap<ResultKey, usize> = HashMap::new();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(pool.len()) {
        let (best_pos, best_gain) = remaining
            .iter()
            .enumerate()
            .map(|(pos, item)| {
                let r: usize = item
                    .keys
                    .iter()
                    .map(|key| seen.get(key).copied().unwrap_or(0))
                    .sum();
                (pos, item.relevance * (1.0 - alpha).powi(r as i32))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("remaining non-empty");
        let item = remaining.remove(best_pos);
        for key in &item.keys {
            *seen.entry(*key).or_insert(0) += 1;
        }
        out.push(best_gain);
    }
    out
}

/// α-nDCG-W at ranks `1..=k` of `ranked`, normalized against the ideal
/// re-ordering of `pool` (use the full candidate set as the pool). Returns
/// one value per rank; ranks beyond `ranked.len()` repeat the final value.
pub fn alpha_ndcg_w(ranked: &[EvalItem], pool: &[EvalItem], alpha: f64, k: usize) -> Vec<f64> {
    let k = k.max(1);
    let g = gains(ranked, alpha);
    let dcgs = dcg(&g);
    let ig = ideal_gains(pool, alpha, k);
    let idcgs = dcg(&ig);
    (0..k)
        .map(|i| {
            let d = if dcgs.is_empty() {
                0.0
            } else {
                dcgs[i.min(dcgs.len() - 1)]
            };
            let id = if idcgs.is_empty() {
                0.0
            } else {
                idcgs[i.min(idcgs.len() - 1)]
            };
            if id > 0.0 {
                (d / id).min(1.0)
            } else {
                0.0
            }
        })
        .collect()
}

/// Relevance of each subtopic (primary key): the maximum relevance of any
/// pool interpretation returning it (§4.6.4: "As one and the same primary
/// key can be returned by multiple distinct query interpretations, we take
/// the maximal score").
fn subtopic_relevance(pool: &[EvalItem]) -> HashMap<ResultKey, f64> {
    let mut rel: HashMap<ResultKey, f64> = HashMap::new();
    for item in pool {
        for k in &item.keys {
            let e = rel.entry(*k).or_insert(0.0);
            if item.relevance > *e {
                *e = item.relevance;
            }
        }
    }
    rel
}

/// WS-recall at ranks `1..=k` (Eq. 4.7): aggregated relevance of the
/// subtopics covered by the top-k interpretations over the total aggregated
/// relevance of all relevant subtopics in `pool`.
pub fn ws_recall(ranked: &[EvalItem], pool: &[EvalItem], k: usize) -> Vec<f64> {
    let rel = subtopic_relevance(pool);
    let total: f64 = rel.values().sum();
    let mut covered: BTreeSet<ResultKey> = BTreeSet::new();
    let mut out = Vec::with_capacity(k);
    let mut acc = 0.0;
    for i in 0..k.max(1) {
        if i < ranked.len() {
            for key in &ranked[i].keys {
                if covered.insert(*key) {
                    acc += rel.get(key).copied().unwrap_or(0.0);
                }
            }
        }
        out.push(if total > 0.0 { acc / total } else { 0.0 });
    }
    out
}

/// Plain S-recall (binary subtopics, Zhai et al.): fraction of distinct
/// subtopics covered by the top-k. Provided for comparison with WS-recall.
pub fn s_recall(ranked: &[EvalItem], pool: &[EvalItem], k: usize) -> Vec<f64> {
    let mut universe: BTreeSet<ResultKey> = BTreeSet::new();
    for item in pool {
        universe.extend(item.keys.iter().copied());
    }
    let total = universe.len() as f64;
    let mut covered: BTreeSet<ResultKey> = BTreeSet::new();
    let mut out = Vec::with_capacity(k);
    for i in 0..k.max(1) {
        if i < ranked.len() {
            covered.extend(ranked[i].keys.iter().copied());
        }
        out.push(if total > 0.0 {
            covered.len() as f64 / total
        } else {
            0.0
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::TableId;

    fn key(t: u32, pk: i64) -> ResultKey {
        ResultKey {
            table: TableId(t),
            pk,
        }
    }

    fn item(rel: f64, keys: &[(u32, i64)]) -> EvalItem {
        EvalItem {
            relevance: rel,
            keys: keys.iter().map(|&(t, p)| key(t, p)).collect(),
        }
    }

    #[test]
    fn alpha_zero_is_plain_ndcg() {
        // With α = 0 overlap is ignored; a relevance-descending order is
        // ideal and scores 1 at every rank.
        let ranked = vec![
            item(1.0, &[(0, 1)]),
            item(0.5, &[(0, 1)]), // full overlap, but α=0 doesn't care
            item(0.2, &[(0, 2)]),
        ];
        let scores = alpha_ndcg_w(&ranked, &ranked, 0.0, 3);
        for s in scores {
            assert!((s - 1.0).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn redundancy_penalized_at_high_alpha() {
        // Two orders of the same pool: redundant-first vs diverse-first.
        let pool = vec![
            item(1.0, &[(0, 1), (0, 2)]),
            item(0.9, &[(0, 1), (0, 2)]), // duplicate results
            item(0.8, &[(0, 3), (0, 4)]), // fresh results
        ];
        let redundant_first = vec![pool[0].clone(), pool[1].clone(), pool[2].clone()];
        let diverse_first = vec![pool[0].clone(), pool[2].clone(), pool[1].clone()];
        let a = alpha_ndcg_w(&redundant_first, &pool, 0.99, 3);
        let b = alpha_ndcg_w(&diverse_first, &pool, 0.99, 3);
        assert!(b[1] > a[1], "diverse {b:?} vs redundant {a:?}");
        assert!(b[2] >= a[2]);
    }

    #[test]
    fn ndcg_bounded_by_one() {
        let pool = vec![
            item(0.3, &[(0, 1)]),
            item(0.9, &[(1, 5), (1, 6)]),
            item(0.5, &[(0, 1), (1, 5)]),
        ];
        // Deliberately bad order.
        let ranked = vec![pool[0].clone(), pool[2].clone(), pool[1].clone()];
        for alpha in [0.0, 0.5, 0.99] {
            for s in alpha_ndcg_w(&ranked, &pool, alpha, 5) {
                assert!((0.0..=1.0).contains(&s), "{s}");
            }
        }
    }

    #[test]
    fn ws_recall_monotone_and_complete() {
        let pool = vec![
            item(1.0, &[(0, 1), (0, 2)]),
            item(0.5, &[(0, 3)]),
            item(0.2, &[(0, 4)]),
        ];
        let r = ws_recall(&pool, &pool, 4);
        for w in r.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((r[2] - 1.0).abs() < 1e-9, "all covered by rank 3: {r:?}");
        assert_eq!(r.len(), 4);
        assert!((r[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ws_recall_weights_by_max_relevance() {
        // Key (0,1) is returned by a 1.0-relevant and a 0.1-relevant
        // interpretation: it counts with weight 1.0.
        let pool = vec![item(1.0, &[(0, 1)]), item(0.1, &[(0, 1), (0, 2)])];
        // Ranking only the low-relevance item still covers key (0,1) at
        // weight 1.0 and key (0,2) at 0.1 => recall = 1.1/1.1 = 1.
        let ranked = vec![pool[1].clone()];
        let r = ws_recall(&ranked, &pool, 1);
        assert!((r[0] - 1.0).abs() < 1e-9, "{r:?}");
        // Ranking only the first covers 1.0/1.1.
        let ranked = vec![pool[0].clone()];
        let r = ws_recall(&ranked, &pool, 1);
        assert!((r[0] - 1.0 / 1.1).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn s_recall_binary() {
        let pool = vec![item(1.0, &[(0, 1), (0, 2)]), item(0.1, &[(0, 3)])];
        let r = s_recall(&pool, &pool, 2);
        assert!((r[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(alpha_ndcg_w(&[], &[], 0.5, 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(ws_recall(&[], &[], 2), vec![0.0, 0.0]);
        assert_eq!(s_recall(&[], &[], 1), vec![0.0]);
    }
}
