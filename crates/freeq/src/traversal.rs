//! Incremental exploration of very large interpretation spaces (§5.6).
//!
//! Over a Freebase-scale schema the interpretation space of a keyword query
//! cannot be materialized: each keyword may occur in hundreds of attributes,
//! and the space is their cross product. [`LazyExplorer`] materializes only
//! the top of the query hierarchy, best-first: partial interpretations
//! (assignments of a keyword-prefix) are expanded in order of an admissible
//! score upper bound, so the first `top_n` complete interpretations popped
//! are exactly the `top_n` most probable ones — without visiting more than
//! an O(top_n · per-keyword-candidates) slice of the space.
//!
//! Entity-centric model (§5.4.1): over the flat schema every keyword maps to
//! a value of some type table's text attribute, and multi-table
//! interpretations join through the shared `topic` hub. Each extra table
//! multiplies a join penalty into the score, standing in for the template
//! prior of the medium-scale model.

use keybridge_core::KeywordQuery;
use keybridge_index::InvertedIndex;
use keybridge_relstore::{AttrRef, Database, TableId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Traversal knobs.
#[derive(Debug, Clone, Copy)]
pub struct TraversalConfig {
    /// How many complete interpretations to materialize.
    pub top_n: usize,
    /// Candidate attributes considered per keyword (ATF-descending cut).
    pub per_keyword_candidates: usize,
    /// ATF smoothing.
    pub alpha: f64,
    /// Log-space penalty per table beyond the first (join cost / template
    /// prior stand-in). More negative = stronger preference for compact
    /// interpretations.
    pub join_log_penalty: f64,
}

impl Default for TraversalConfig {
    fn default() -> Self {
        TraversalConfig {
            top_n: 200,
            per_keyword_candidates: 64,
            alpha: 1.0,
            join_log_penalty: -1.6,
        }
    }
}

/// A complete interpretation materialized by the lazy traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyInterpretation {
    /// One value-binding attribute per keyword, aligned with the query terms.
    pub bindings: Vec<AttrRef>,
    /// Distinct tables, sorted.
    pub tables: Vec<TableId>,
    /// Log probability (unnormalized).
    pub log_score: f64,
}

impl LazyInterpretation {
    /// Normalized probabilities for a batch of interpretations.
    pub fn normalize(items: &[LazyInterpretation]) -> Vec<f64> {
        if items.is_empty() {
            return Vec::new();
        }
        let m = items
            .iter()
            .map(|i| i.log_score)
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = items.iter().map(|i| (i.log_score - m).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }
}

/// A partial interpretation in the best-first frontier.
struct Partial {
    /// Attributes assigned to the keyword prefix.
    assigned: Vec<AttrRef>,
    /// Exact log score of the assigned prefix (including join penalties so
    /// far).
    g: f64,
    /// Admissible upper bound on the completion (max remaining candidate
    /// scores, assuming no further join penalty).
    bound: f64,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// The lazy best-first explorer.
pub struct LazyExplorer<'a> {
    db: &'a Database,
    index: &'a InvertedIndex,
    config: TraversalConfig,
}

impl<'a> LazyExplorer<'a> {
    pub fn new(db: &'a Database, index: &'a InvertedIndex, config: TraversalConfig) -> Self {
        LazyExplorer { db, index, config }
    }

    /// The database being explored (used by callers for rendering).
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Per-keyword candidates `(attr, log ATF)`, best first, truncated.
    fn candidates(&self, query: &KeywordQuery) -> Vec<Vec<(AttrRef, f64)>> {
        query
            .terms()
            .iter()
            .map(|term| {
                let mut v: Vec<(AttrRef, f64)> = self
                    .index
                    .attrs_containing(term)
                    .iter()
                    .map(|&a| (a, self.index.atf(term, a, self.config.alpha).ln()))
                    .collect();
                v.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| (a.0.table.0, a.0.attr.0).cmp(&(b.0.table.0, b.0.attr.0)))
                });
                v.truncate(self.config.per_keyword_candidates);
                v
            })
            .collect()
    }

    /// The estimated size of the full interpretation space (product of
    /// per-keyword candidate counts *before* truncation) — Table 5.2's
    /// space column.
    pub fn space_size(&self, query: &KeywordQuery) -> u128 {
        let mut total: u128 = 1;
        for term in query.terms() {
            total = total.saturating_mul(self.index.attrs_containing(term).len() as u128);
        }
        if query.is_empty() {
            0
        } else {
            total
        }
    }

    /// Materialize the `top_n` most probable complete interpretations,
    /// best first. Returns fewer if the space is smaller.
    pub fn top_interpretations(&self, query: &KeywordQuery) -> Vec<LazyInterpretation> {
        if query.is_empty() {
            return Vec::new();
        }
        let cands = self.candidates(query);
        if cands.iter().any(|c| c.is_empty()) {
            return Vec::new(); // some keyword matches nothing
        }
        // Suffix maxima for the admissible bound.
        let n = cands.len();
        let mut suffix_max = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix_max[i] = suffix_max[i + 1] + cands[i][0].1;
        }

        let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
        heap.push(Partial {
            assigned: Vec::new(),
            g: 0.0,
            bound: suffix_max[0],
        });
        let mut out = Vec::with_capacity(self.config.top_n);
        // Expansion budget: generous guard against adversarial inputs.
        let mut expansions = 0usize;
        let budget = self.config.top_n * self.config.per_keyword_candidates * 50 + 10_000;

        while let Some(p) = heap.pop() {
            expansions += 1;
            if expansions > budget {
                break;
            }
            let depth = p.assigned.len();
            if depth == n {
                let mut tables: Vec<TableId> = p.assigned.iter().map(|a| a.table).collect();
                tables.sort();
                tables.dedup();
                out.push(LazyInterpretation {
                    bindings: p.assigned,
                    tables,
                    log_score: p.g,
                });
                if out.len() >= self.config.top_n {
                    break;
                }
                continue;
            }
            for &(attr, lg) in &cands[depth] {
                // Join penalty when this attribute's table is new.
                let new_table = !p.assigned.iter().any(|a| a.table == attr.table);
                let penalty = if new_table && !p.assigned.is_empty() {
                    self.config.join_log_penalty
                } else {
                    0.0
                };
                let g = p.g + lg + penalty;
                let mut assigned = p.assigned.clone();
                assigned.push(attr);
                heap.push(Partial {
                    assigned,
                    g,
                    bound: g + suffix_max[depth + 1],
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{FreebaseConfig, FreebaseDataset};

    fn fixture() -> (FreebaseDataset, InvertedIndex) {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let idx = InvertedIndex::build(&fb.db);
        (fb, idx)
    }

    /// A keyword that certainly occurs: a token of some topic name.
    fn common_keyword(fb: &FreebaseDataset) -> String {
        let row = fb.db.table(fb.topic).row(keybridge_relstore::RowId(0));
        let name = row[1].as_text().unwrap();
        name.split(' ').next().unwrap().to_owned()
    }

    #[test]
    fn returns_sorted_top_n() {
        let (fb, idx) = fixture();
        let kw = common_keyword(&fb);
        let q = KeywordQuery::from_terms(vec![kw.clone(), kw]);
        let explorer = LazyExplorer::new(
            &fb.db,
            &idx,
            TraversalConfig {
                top_n: 25,
                ..Default::default()
            },
        );
        let tops = explorer.top_interpretations(&q);
        assert!(!tops.is_empty());
        assert!(tops.len() <= 25);
        for w in tops.windows(2) {
            assert!(
                w[0].log_score >= w[1].log_score - 1e-9,
                "not sorted: {} < {}",
                w[0].log_score,
                w[1].log_score
            );
        }
    }

    #[test]
    fn best_first_matches_exhaustive_on_small_space() {
        let (fb, idx) = fixture();
        let kw = common_keyword(&fb);
        let q = KeywordQuery::from_terms(vec![kw.clone()]);
        let cfg = TraversalConfig {
            top_n: 1000,
            per_keyword_candidates: 1000,
            ..Default::default()
        };
        let explorer = LazyExplorer::new(&fb.db, &idx, cfg);
        let tops = explorer.top_interpretations(&q);
        // Single keyword: one interpretation per attribute containing it.
        let attrs = idx.attrs_containing(&kw);
        assert_eq!(tops.len(), attrs.len());
        // Scores must equal ln ATF exactly.
        for t in &tops {
            let expected = idx.atf(&kw, t.bindings[0], cfg.alpha).ln();
            assert!((t.log_score - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn join_penalty_prefers_single_table() {
        let (fb, idx) = fixture();
        let kw = common_keyword(&fb);
        // Two identical keywords can land in the same attribute (one table)
        // or different tables; the former must rank first when ATFs are
        // comparable because of the join penalty.
        let q = KeywordQuery::from_terms(vec![kw.clone(), kw]);
        let explorer = LazyExplorer::new(&fb.db, &idx, TraversalConfig::default());
        let tops = explorer.top_interpretations(&q);
        assert!(!tops.is_empty());
        assert_eq!(tops[0].tables.len(), 1, "single-table should win");
    }

    #[test]
    fn space_size_counts_products() {
        let (fb, idx) = fixture();
        let kw = common_keyword(&fb);
        let q1 = KeywordQuery::from_terms(vec![kw.clone()]);
        let q2 = KeywordQuery::from_terms(vec![kw.clone(), kw]);
        let explorer = LazyExplorer::new(&fb.db, &idx, TraversalConfig::default());
        let s1 = explorer.space_size(&q1);
        let s2 = explorer.space_size(&q2);
        assert!(s1 > 0);
        assert_eq!(s2, s1 * s1);
    }

    #[test]
    fn unknown_keyword_empty() {
        let (fb, idx) = fixture();
        let q = KeywordQuery::from_terms(vec!["zzzznope".into()]);
        let explorer = LazyExplorer::new(&fb.db, &idx, TraversalConfig::default());
        assert!(explorer.top_interpretations(&q).is_empty());
        assert!(explorer
            .top_interpretations(&KeywordQuery::from_terms(vec![]))
            .is_empty());
    }

    #[test]
    fn truncation_bounds_work() {
        let (fb, idx) = fixture();
        let kw = common_keyword(&fb);
        let q = KeywordQuery::from_terms(vec![kw.clone(), kw.clone(), kw]);
        let explorer = LazyExplorer::new(
            &fb.db,
            &idx,
            TraversalConfig {
                top_n: 10,
                per_keyword_candidates: 4,
                ..Default::default()
            },
        );
        let tops = explorer.top_interpretations(&q);
        assert!(tops.len() <= 10);
        let probs = LazyInterpretation::normalize(&tops);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
