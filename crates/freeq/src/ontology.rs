//! The abstract ontology layer over a database schema (§5.5.1).
//!
//! A [`SchemaOntology`] is a rooted tree of concepts whose leaves own tables.
//! For the Freebase-like datasets the natural first layer is the domain
//! (every type table belongs to exactly one domain); coarser layers can be
//! added by grouping domains, which is how the "ontologies of different
//! size" of Table 5.3 are produced.

use keybridge_relstore::{Database, TableId};
use std::collections::HashMap;

/// One concept of the ontology.
#[derive(Debug, Clone)]
pub struct Concept {
    pub name: String,
    /// Parent concept index; `None` for the root.
    pub parent: Option<usize>,
    /// Depth below the root.
    pub depth: u32,
}

/// A rooted concept tree with a table→leaf-concept assignment.
#[derive(Debug, Clone)]
pub struct SchemaOntology {
    concepts: Vec<Concept>,
    table_concept: HashMap<TableId, usize>,
}

impl SchemaOntology {
    /// Build a two-level ontology: root → one concept per domain, each
    /// owning that domain's tables.
    pub fn from_domains(domains: &[(String, Vec<TableId>)]) -> Self {
        let mut concepts = vec![Concept {
            name: "root".to_owned(),
            parent: None,
            depth: 0,
        }];
        let mut table_concept = HashMap::new();
        for (name, tables) in domains {
            let idx = concepts.len();
            concepts.push(Concept {
                name: name.clone(),
                parent: Some(0),
                depth: 1,
            });
            for t in tables {
                table_concept.insert(*t, idx);
            }
        }
        SchemaOntology {
            concepts,
            table_concept,
        }
    }

    /// Build a three-level ontology: root → super-concepts grouping
    /// `group_size` domains each → domain concepts → tables. Larger
    /// `group_size` yields a smaller, coarser ontology (Table 5.3's knob).
    pub fn with_groups(domains: &[(String, Vec<TableId>)], group_size: usize) -> Self {
        let group_size = group_size.max(1);
        let mut concepts = vec![Concept {
            name: "root".to_owned(),
            parent: None,
            depth: 0,
        }];
        let mut table_concept = HashMap::new();
        for (gi, chunk) in domains.chunks(group_size).enumerate() {
            let group_idx = concepts.len();
            concepts.push(Concept {
                name: format!("group_{gi}"),
                parent: Some(0),
                depth: 1,
            });
            for (name, tables) in chunk {
                let idx = concepts.len();
                concepts.push(Concept {
                    name: name.clone(),
                    parent: Some(group_idx),
                    depth: 2,
                });
                for t in tables {
                    table_concept.insert(*t, idx);
                }
            }
        }
        SchemaOntology {
            concepts,
            table_concept,
        }
    }

    /// Number of concepts (including the root).
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology holds only the root.
    pub fn is_empty(&self) -> bool {
        self.concepts.len() <= 1
    }

    /// The concept at `idx`.
    pub fn concept(&self, idx: usize) -> &Concept {
        &self.concepts[idx]
    }

    /// Iterate `(index, &Concept)`.
    pub fn concepts(&self) -> impl Iterator<Item = (usize, &Concept)> {
        self.concepts.iter().enumerate()
    }

    /// The leaf concept owning table `t`, if assigned.
    pub fn concept_of(&self, t: TableId) -> Option<usize> {
        self.table_concept.get(&t).copied()
    }

    /// The ancestor chain of a concept, from itself up to the root.
    pub fn ancestors(&self, mut c: usize) -> Vec<usize> {
        let mut out = vec![c];
        while let Some(p) = self.concepts[c].parent {
            out.push(p);
            c = p;
        }
        out
    }

    /// Whether table `t` belongs to the subtree rooted at `concept`.
    pub fn contains(&self, concept: usize, t: TableId) -> bool {
        match self.concept_of(t) {
            Some(leaf) => self.ancestors(leaf).contains(&concept),
            None => false,
        }
    }

    /// Maximum concept depth.
    pub fn max_depth(&self) -> u32 {
        self.concepts.iter().map(|c| c.depth).max().unwrap_or(0)
    }

    /// Average number of children per internal concept.
    pub fn avg_fanout(&self) -> f64 {
        let mut children: HashMap<usize, usize> = HashMap::new();
        for c in &self.concepts {
            if let Some(p) = c.parent {
                *children.entry(p).or_default() += 1;
            }
        }
        if children.is_empty() {
            0.0
        } else {
            children.values().sum::<usize>() as f64 / children.len() as f64
        }
    }

    /// Number of tables assigned to concepts.
    pub fn table_count(&self) -> usize {
        self.table_concept.len()
    }

    /// Convenience: build the domain ontology of a Freebase-like database
    /// from `(domain name, tables)` pairs taken from the generator, checking
    /// the tables exist.
    pub fn validate_against(&self, db: &Database) -> bool {
        self.table_concept
            .keys()
            .all(|t| (t.0 as usize) < db.schema().table_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{FreebaseConfig, FreebaseDataset};

    fn domains(fb: &FreebaseDataset) -> Vec<(String, Vec<TableId>)> {
        fb.domains
            .iter()
            .map(|d| (d.name.clone(), d.tables.clone()))
            .collect()
    }

    #[test]
    fn two_level_structure() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let o = SchemaOntology::from_domains(&domains(&fb));
        assert_eq!(o.len(), 1 + fb.domains.len());
        assert_eq!(o.max_depth(), 1);
        assert_eq!(o.table_count(), fb.type_table_count());
        assert!(o.validate_against(&fb.db));
        assert!(!o.is_empty());
    }

    #[test]
    fn containment_follows_domains() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(2)).unwrap();
        let o = SchemaOntology::from_domains(&domains(&fb));
        for (di, d) in fb.domains.iter().enumerate() {
            let concept = 1 + di; // insertion order
            for &t in &d.tables {
                assert!(o.contains(concept, t));
                assert!(o.contains(0, t), "root contains everything");
            }
            // A table of another domain is not contained.
            let other = &fb.domains[(di + 1) % fb.domains.len()];
            assert!(!o.contains(concept, other.tables[0]));
        }
    }

    #[test]
    fn grouped_ontology_deeper_and_smaller_fanout_at_root() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(3)).unwrap();
        let d = domains(&fb);
        let flat = SchemaOntology::from_domains(&d);
        let grouped = SchemaOntology::with_groups(&d, 2);
        assert_eq!(grouped.max_depth(), 2);
        assert!(grouped.len() > flat.len());
        assert_eq!(grouped.table_count(), flat.table_count());
        // Containment at the group level covers both member domains.
        for &t in &fb.domains[0].tables {
            assert!(grouped.contains(1, t)); // group_0 is concept 1
        }
    }

    #[test]
    fn ancestors_chain_to_root() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(4)).unwrap();
        let o = SchemaOntology::with_groups(&domains(&fb), 2);
        let t = fb.domains[3].tables[0];
        let leaf = o.concept_of(t).unwrap();
        let anc = o.ancestors(leaf);
        assert_eq!(*anc.last().unwrap(), 0);
        assert_eq!(anc[0], leaf);
        assert!(anc.len() == 3); // leaf -> group -> root
    }

    #[test]
    fn unassigned_table_not_contained() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(5)).unwrap();
        let o = SchemaOntology::from_domains(&domains(&fb));
        // `topic` is not assigned to any domain.
        assert!(o.concept_of(fb.topic).is_none());
        assert!(!o.contains(0, fb.topic));
    }

    #[test]
    fn fanout_statistics() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(6)).unwrap();
        let o = SchemaOntology::from_domains(&domains(&fb));
        assert!(o.avg_fanout() > 0.0);
    }
}
