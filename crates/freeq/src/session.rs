//! The FreeQ construction session (§5.5.3, §5.7): the IQP interaction loop
//! over lazily-materialized candidates, with or without ontology-based QCOs.

use crate::ontology::SchemaOntology;
use crate::qco::{derive_options, qco_efficiency, FreeQOption};
use crate::traversal::LazyInterpretation;
use keybridge_relstore::TableId;

/// Session knobs.
#[derive(Debug, Clone, Copy)]
pub struct FreeQSessionConfig {
    /// Stop when at most this many candidates remain.
    pub stop_at: usize,
    /// Safety cap on interaction steps.
    pub max_steps: usize,
}

impl Default for FreeQSessionConfig {
    fn default() -> Self {
        FreeQSessionConfig {
            stop_at: 5,
            max_steps: 500,
        }
    }
}

/// Outcome of a simulated FreeQ construction run.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeQOutcome {
    /// Options the user evaluated.
    pub steps: usize,
    /// Candidates remaining at the end.
    pub remaining: usize,
    /// Whether the intended interpretation survived.
    pub target_retained: bool,
}

/// An interactive session over materialized top candidates.
pub struct FreeQSession<'a> {
    ontology: Option<&'a SchemaOntology>,
    candidates: Vec<(LazyInterpretation, f64)>,
    asked: Vec<FreeQOption>,
    steps: usize,
    config: FreeQSessionConfig,
}

impl<'a> FreeQSession<'a> {
    /// Start a session. `ontology = None` is the plain-QCO baseline of
    /// Fig. 5.2/5.4.
    pub fn new(
        ontology: Option<&'a SchemaOntology>,
        interpretations: Vec<LazyInterpretation>,
        config: FreeQSessionConfig,
    ) -> Self {
        let probs = LazyInterpretation::normalize(&interpretations);
        FreeQSession {
            ontology,
            candidates: interpretations.into_iter().zip(probs).collect(),
            asked: Vec::new(),
            steps: 0,
            config,
        }
    }

    /// Remaining candidates.
    pub fn remaining(&self) -> &[(LazyInterpretation, f64)] {
        &self.candidates
    }

    /// Options evaluated so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether to stop.
    pub fn finished(&self) -> bool {
        self.candidates.len() <= self.config.stop_at
            || self.steps >= self.config.max_steps
            || self.next_option().is_none()
    }

    /// Most efficient unasked option (§5.5.2's measure = information gain).
    pub fn next_option(&self) -> Option<FreeQOption> {
        let interps: Vec<LazyInterpretation> =
            self.candidates.iter().map(|(i, _)| i.clone()).collect();
        let probs: Vec<f64> = self.candidates.iter().map(|(_, p)| *p).collect();
        let opts = derive_options(&interps, self.ontology);
        let mut best: Option<(f64, FreeQOption)> = None;
        for o in opts {
            if self.asked.contains(&o) {
                continue;
            }
            let eff = qco_efficiency(o, &interps, &probs, self.ontology);
            if eff <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((b, bo)) => eff > b + 1e-12 || (eff > b - 1e-12 && o < bo),
            };
            if better {
                best = Some((eff, o));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Apply a verdict.
    pub fn apply(&mut self, option: FreeQOption, accepted: bool) {
        self.steps += 1;
        self.candidates.retain(|(c, _)| {
            let s = option.subsumed_by(c, self.ontology);
            if accepted {
                s
            } else {
                !s
            }
        });
        self.asked.push(option);
    }

    /// Drive the session with a truthful user whose intent binds keyword
    /// `k` to `target_tables[k]`. Returns `None` if the intent is not among
    /// the candidates (the lazy cut missed it).
    pub fn run_with_target(mut self, target_tables: &[TableId]) -> Option<FreeQOutcome> {
        let matches_target = |c: &LazyInterpretation| {
            c.bindings.len() == target_tables.len()
                && c.bindings
                    .iter()
                    .zip(target_tables)
                    .all(|(a, t)| a.table == *t)
        };
        if !self.candidates.iter().any(|(c, _)| matches_target(c)) {
            return None;
        }
        while self.candidates.len() > self.config.stop_at && self.steps < self.config.max_steps {
            let Some(option) = self.next_option() else {
                break;
            };
            let accept = match option {
                FreeQOption::KeywordInTable { keyword, table } => {
                    target_tables.get(keyword) == Some(&table)
                }
                FreeQOption::KeywordInConcept { keyword, concept } => {
                    self.ontology.is_some_and(|o| {
                        target_tables
                            .get(keyword)
                            .is_some_and(|t| o.contains(concept, *t))
                    })
                }
            };
            self.apply(option, accept);
        }
        let target_retained = self.candidates.iter().any(|(c, _)| matches_target(c));
        Some(FreeQOutcome {
            steps: self.steps,
            remaining: self.candidates.len(),
            target_retained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{LazyExplorer, TraversalConfig};
    use keybridge_core::KeywordQuery;
    use keybridge_datagen::{FreebaseConfig, FreebaseDataset};
    use keybridge_index::InvertedIndex;

    struct Fixture {
        fb: FreebaseDataset,
        idx: InvertedIndex,
        ontology: SchemaOntology,
    }

    fn fixture() -> Fixture {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let idx = InvertedIndex::build(&fb.db);
        let domains: Vec<(String, Vec<TableId>)> = fb
            .domains
            .iter()
            .map(|d| (d.name.clone(), d.tables.clone()))
            .collect();
        let ontology = SchemaOntology::from_domains(&domains);
        Fixture { fb, idx, ontology }
    }

    /// A keyword + the tables binding it (from actual index content).
    fn ambiguous_keyword(f: &Fixture) -> (String, Vec<TableId>) {
        // Pick the keyword occurring in the most type tables.
        let mut best: Option<(String, usize)> = None;
        for (_, row) in f.fb.db.table(f.fb.topic).rows().take(100) {
            let name = row[1].as_text().unwrap();
            for tok in name.split(' ') {
                let n = f.idx.attrs_containing(tok).len();
                if best.as_ref().is_none_or(|(_, b)| n > *b) {
                    best = Some((tok.to_owned(), n));
                }
            }
        }
        let (kw, _) = best.unwrap();
        let tables: Vec<TableId> = f
            .idx
            .attrs_containing(&kw)
            .iter()
            .map(|a| a.table)
            .filter(|t| *t != f.fb.topic)
            .collect();
        (kw, tables)
    }

    #[test]
    fn ontology_sessions_cost_fewer_steps() {
        let f = fixture();
        let (kw, _) = ambiguous_keyword(&f);
        let q = KeywordQuery::from_terms(vec![kw.clone(), kw]);
        let explorer = LazyExplorer::new(&f.fb.db, &f.idx, TraversalConfig::default());
        let tops = explorer.top_interpretations(&q);
        if tops.len() < 10 {
            return; // not ambiguous enough on this tiny fixture
        }
        let target: Vec<TableId> = tops
            .last()
            .unwrap()
            .bindings
            .iter()
            .map(|a| a.table)
            .collect();

        let plain = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
            .run_with_target(&target)
            .expect("target among candidates");
        let onto = FreeQSession::new(
            Some(&f.ontology),
            tops.clone(),
            FreeQSessionConfig::default(),
        )
        .run_with_target(&target)
        .expect("target among candidates");

        assert!(plain.target_retained);
        assert!(onto.target_retained);
        assert!(
            onto.steps <= plain.steps,
            "ontology {} vs plain {}",
            onto.steps,
            plain.steps
        );
    }

    #[test]
    fn session_terminates_and_retains_target() {
        let f = fixture();
        let (kw, _) = ambiguous_keyword(&f);
        let q = KeywordQuery::from_terms(vec![kw]);
        let explorer = LazyExplorer::new(&f.fb.db, &f.idx, TraversalConfig::default());
        let tops = explorer.top_interpretations(&q);
        if tops.is_empty() {
            return;
        }
        for pick in [0, tops.len() / 2, tops.len() - 1] {
            let target: Vec<TableId> = tops[pick].bindings.iter().map(|a| a.table).collect();
            let out = FreeQSession::new(
                Some(&f.ontology),
                tops.clone(),
                FreeQSessionConfig::default(),
            )
            .run_with_target(&target)
            .unwrap();
            assert!(out.target_retained, "target {pick} lost");
            assert!(out.remaining <= tops.len());
        }
    }

    #[test]
    fn missing_target_reported() {
        let f = fixture();
        let (kw, _) = ambiguous_keyword(&f);
        let q = KeywordQuery::from_terms(vec![kw]);
        let explorer = LazyExplorer::new(&f.fb.db, &f.idx, TraversalConfig::default());
        let tops = explorer.top_interpretations(&q);
        // The `topic` table itself is a valid binding, so an intent on a
        // nonexistent table id is never a candidate.
        let bogus = vec![TableId(9999)];
        assert!(FreeQSession::new(None, tops, FreeQSessionConfig::default())
            .run_with_target(&bogus)
            .is_none());
    }

    #[test]
    fn steps_capped() {
        let f = fixture();
        let (kw, _) = ambiguous_keyword(&f);
        let q = KeywordQuery::from_terms(vec![kw.clone(), kw]);
        let explorer = LazyExplorer::new(&f.fb.db, &f.idx, TraversalConfig::default());
        let tops = explorer.top_interpretations(&q);
        if tops.len() < 4 {
            return;
        }
        let target: Vec<TableId> = tops[0].bindings.iter().map(|a| a.table).collect();
        let out = FreeQSession::new(
            None,
            tops,
            FreeQSessionConfig {
                stop_at: 1,
                max_steps: 3,
            },
        )
        .run_with_target(&target)
        .unwrap();
        assert!(out.steps <= 3);
    }
}
