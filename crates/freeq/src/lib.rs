//! # keybridge-freeq
//!
//! FreeQ: scaling interactive query construction to very large databases
//! (Chapter 5).
//!
//! Two things break when the schema grows to Freebase scale (7,000+ tables,
//! §5.4.2):
//!
//! 1. **Options stop being informative.** With a big, flat schema a keyword
//!    occurs in hundreds of tables, so any single "is k a value of T.name?"
//!    option prunes almost nothing. FreeQ builds an *ontology layer* over
//!    the schema ([`SchemaOntology`]) and asks concept-level questions —
//!    "does k belong to the Film domain?" — whose information gain is large
//!    (§5.5).
//! 2. **The interpretation space cannot be materialized.** FreeQ explores
//!    the query hierarchy incrementally, best-first by probability upper
//!    bound, materializing only the top of the space ([`LazyExplorer`],
//!    §5.6).
//!
//! [`FreeQSession`] combines both into the interactive construction loop and
//! measures interaction cost with and without the ontology (Figs. 5.2, 5.4).

pub mod ontology;
pub mod qco;
pub mod session;
pub mod traversal;

pub use ontology::{Concept, SchemaOntology};
pub use qco::{qco_efficiency, FreeQOption};
pub use session::{FreeQOutcome, FreeQSession, FreeQSessionConfig};
pub use traversal::{LazyExplorer, LazyInterpretation, TraversalConfig};
