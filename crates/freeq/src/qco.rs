//! Query construction options over large schemas and their efficiency
//! measure (§5.5).

use crate::ontology::SchemaOntology;
use crate::traversal::LazyInterpretation;
use keybridge_relstore::TableId;

/// A FreeQ construction option, always about one keyword position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FreeQOption {
    /// "Keyword `k` is a value inside concept `c`" — the ontology-based QCO.
    KeywordInConcept { keyword: usize, concept: usize },
    /// "Keyword `k` is a value of table `t`" — the plain schema-level QCO.
    KeywordInTable { keyword: usize, table: TableId },
}

impl FreeQOption {
    /// Whether `interp` subsumes this option.
    pub fn subsumed_by(
        &self,
        interp: &LazyInterpretation,
        ontology: Option<&SchemaOntology>,
    ) -> bool {
        match *self {
            FreeQOption::KeywordInTable { keyword, table } => {
                interp.bindings.get(keyword).map(|a| a.table) == Some(table)
            }
            FreeQOption::KeywordInConcept { keyword, concept } => match ontology {
                Some(o) => interp
                    .bindings
                    .get(keyword)
                    .is_some_and(|a| o.contains(concept, a.table)),
                None => false,
            },
        }
    }
}

/// Shannon entropy of normalized weights.
fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in weights {
        let p = w / total;
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// The efficiency of a QCO (§5.5.2): the information it reveals about the
/// interpretation space, `IG(I|O) = H(I) − E[H(I | answer)]`, measured over
/// `candidates` with probability weights `probs`. An efficient QCO splits
/// probability mass evenly; a useless one (subsuming everything or nothing)
/// scores 0.
pub fn qco_efficiency(
    option: FreeQOption,
    candidates: &[LazyInterpretation],
    probs: &[f64],
    ontology: Option<&SchemaOntology>,
) -> f64 {
    debug_assert_eq!(candidates.len(), probs.len());
    let h = entropy(probs);
    let (mut acc, mut rej) = (Vec::new(), Vec::new());
    for (c, &p) in candidates.iter().zip(probs) {
        if option.subsumed_by(c, ontology) {
            acc.push(p);
        } else {
            rej.push(p);
        }
    }
    let total: f64 = probs.iter().sum();
    if total <= 0.0 || acc.is_empty() || rej.is_empty() {
        return 0.0;
    }
    let pa: f64 = acc.iter().sum::<f64>() / total;
    h - (pa * entropy(&acc) + (1.0 - pa) * entropy(&rej))
}

/// All options derivable from a candidate set: per keyword, the distinct
/// bound tables; with an ontology, also every ancestor concept of those
/// tables (excluding the root, which never discriminates).
pub fn derive_options(
    candidates: &[LazyInterpretation],
    ontology: Option<&SchemaOntology>,
) -> Vec<FreeQOption> {
    use std::collections::BTreeSet;
    let mut out: BTreeSet<FreeQOption> = BTreeSet::new();
    for c in candidates {
        for (k, attr) in c.bindings.iter().enumerate() {
            out.insert(FreeQOption::KeywordInTable {
                keyword: k,
                table: attr.table,
            });
            if let Some(o) = ontology {
                if let Some(leaf) = o.concept_of(attr.table) {
                    for anc in o.ancestors(leaf) {
                        if anc != 0 {
                            out.insert(FreeQOption::KeywordInConcept {
                                keyword: k,
                                concept: anc,
                            });
                        }
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{AttrId, AttrRef};

    fn interp(tables: &[u32], score: f64) -> LazyInterpretation {
        let bindings: Vec<AttrRef> = tables
            .iter()
            .map(|&t| AttrRef {
                table: TableId(t),
                attr: AttrId(1),
            })
            .collect();
        let mut ts: Vec<TableId> = tables.iter().map(|&t| TableId(t)).collect();
        ts.sort();
        ts.dedup();
        LazyInterpretation {
            bindings,
            tables: ts,
            log_score: score,
        }
    }

    fn ontology_two_domains() -> SchemaOntology {
        // Domain A: tables 0..4, Domain B: tables 5..9.
        SchemaOntology::from_domains(&[
            ("a".to_owned(), (0..5).map(TableId).collect()),
            ("b".to_owned(), (5..10).map(TableId).collect()),
        ])
    }

    #[test]
    fn concept_option_prunes_whole_domain() {
        let o = ontology_two_domains();
        // 10 candidates: keyword 0 bound to tables 0..10 uniformly.
        let cands: Vec<LazyInterpretation> = (0..10).map(|t| interp(&[t], 0.0)).collect();
        let probs = vec![0.1; 10];
        let concept_opt = FreeQOption::KeywordInConcept {
            keyword: 0,
            concept: 1, // domain a
        };
        let table_opt = FreeQOption::KeywordInTable {
            keyword: 0,
            table: TableId(0),
        };
        let eff_concept = qco_efficiency(concept_opt, &cands, &probs, Some(&o));
        let eff_table = qco_efficiency(table_opt, &cands, &probs, Some(&o));
        // Concept option halves the space (1 bit); table option removes one
        // of ten (≈ 0.47 bits).
        assert!(eff_concept > eff_table, "{eff_concept} vs {eff_table}");
        assert!((eff_concept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn useless_options_score_zero() {
        let o = ontology_two_domains();
        let cands: Vec<LazyInterpretation> = (0..5).map(|t| interp(&[t], 0.0)).collect();
        let probs = vec![0.2; 5];
        // All candidates are in domain a: the concept subsumes everything.
        let all = FreeQOption::KeywordInConcept {
            keyword: 0,
            concept: 1,
        };
        assert_eq!(qco_efficiency(all, &cands, &probs, Some(&o)), 0.0);
        // No candidate is in domain b.
        let none = FreeQOption::KeywordInConcept {
            keyword: 0,
            concept: 2,
        };
        assert_eq!(qco_efficiency(none, &cands, &probs, Some(&o)), 0.0);
    }

    #[test]
    fn derive_includes_tables_and_concepts() {
        let o = ontology_two_domains();
        let cands = vec![interp(&[0, 5], 0.0), interp(&[1, 6], -1.0)];
        let opts = derive_options(&cands, Some(&o));
        assert!(opts.contains(&FreeQOption::KeywordInTable {
            keyword: 0,
            table: TableId(0)
        }));
        assert!(opts.contains(&FreeQOption::KeywordInConcept {
            keyword: 0,
            concept: 1
        }));
        assert!(opts.contains(&FreeQOption::KeywordInConcept {
            keyword: 1,
            concept: 2
        }));
        // Root concept excluded.
        assert!(!opts
            .iter()
            .any(|o| matches!(o, FreeQOption::KeywordInConcept { concept: 0, .. })));
        // Without an ontology only table options appear.
        let plain = derive_options(&cands, None);
        assert!(plain
            .iter()
            .all(|o| matches!(o, FreeQOption::KeywordInTable { .. })));
    }

    #[test]
    fn subsumption_per_keyword_position() {
        let o = ontology_two_domains();
        let c = interp(&[0, 5], 0.0);
        assert!(FreeQOption::KeywordInTable {
            keyword: 0,
            table: TableId(0)
        }
        .subsumed_by(&c, Some(&o)));
        assert!(!FreeQOption::KeywordInTable {
            keyword: 1,
            table: TableId(0)
        }
        .subsumed_by(&c, Some(&o)));
        assert!(FreeQOption::KeywordInConcept {
            keyword: 1,
            concept: 2
        }
        .subsumed_by(&c, Some(&o)));
        // Concept options without ontology never subsume.
        assert!(!FreeQOption::KeywordInConcept {
            keyword: 1,
            concept: 2
        }
        .subsumed_by(&c, None));
    }
}
