//! Integration tests for the open-loop load harness.
//!
//! The harness exists to fix coordinated omission, so these tests pin the
//! two properties that make it trustworthy: (1) with a known injected
//! service time, measured open-loop latencies dominate the analytic
//! virtual-time queueing model — the harness really charges queueing delay
//! to the service; (2) at matched offered load past saturation, the
//! open-loop p95 is at least the closed-loop p95 — the closed loop's
//! adaptive arrivals hide exactly the delay the open loop surfaces.

use keybridge_bench::{
    openloop_schedule, percentile, queue_latencies, run_open_loop, sweep_capacity, MixWeights,
    OpenLoopConfig, SloConfig, SweepConfig,
};
use keybridge_core::{
    InterpreterConfig, SearchService, SearchSnapshot, ServeRequests, TemplateCatalog,
};
use keybridge_datagen::{
    holdout_plan, ImdbConfig, ImdbDataset, IngestConfig, Workload, WorkloadConfig,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::RowBatch;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A minimal snapshot for runs whose search work is an injected sleep: the
/// service only needs something valid to boot over.
fn tiny_snapshot() -> Arc<SearchSnapshot> {
    let data = ImdbDataset::generate(ImdbConfig::tiny(3)).unwrap();
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).unwrap();
    Arc::new(SearchSnapshot::new(
        data.db,
        index,
        catalog,
        InterpreterConfig::default(),
    ))
}

/// A search-only mix: every scheduled op is a plain search, so an injected
/// sleep makes the service time an exact known constant.
fn search_only() -> MixWeights {
    MixWeights {
        search: 1,
        diversified: 0,
        session: 0,
        ingest: 0,
    }
}

#[test]
fn injected_delays_reproduce_analytic_queueing() {
    // 10 arrivals at 100 rps (mean gap 10 ms) into a single worker that
    // takes exactly 20 ms per request: the worker falls behind by ~10 ms
    // per arrival, and the open-loop latency of each request must be at
    // least what the FIFO virtual-time model predicts. (It can only be
    // more: sleeps oversleep, dispatch never fires early, and the single
    // worker drains the queue in schedule order — real completion times
    // dominate virtual ones pointwise, hence sorted samples dominate
    // elementwise.)
    let service_s = 0.020;
    let ops = openloop_schedule(11, 10, 100.0, search_only(), 1, 0);
    let arrivals: Vec<f64> = ops.iter().map(|o| o.at).collect();
    let mut expect_ms: Vec<f64> = queue_latencies(&arrivals, service_s, 1)
        .into_iter()
        .map(|s| s * 1e3)
        .collect();
    expect_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let service = SearchService::start(tiny_snapshot(), 1);
    let cfg = OpenLoopConfig {
        workers: 1,
        sync_clients: 1,
        timeout_ms: 10_000.0,
        inject_sleep: Some(Duration::from_secs_f64(service_s)),
        ..Default::default()
    };
    let queries = vec![vec!["x".to_string()]];
    let batches: Vec<RowBatch> = Vec::new();
    let run = run_open_loop(&service, &queries, &batches, &ops, &cfg);

    assert_eq!(run.offered, 10);
    assert_eq!(run.completed, 10, "failures: {}", run.failures);
    assert_eq!(run.failures, 0);
    for (i, (m, e)) in run.latencies_ms.iter().zip(&expect_ms).enumerate() {
        assert!(
            m + 0.5 >= *e,
            "sorted latency {i} measured {m:.3} ms below analytic floor {e:.3} ms"
        );
    }
    // The queue grows past a single service time, and the tail shows it.
    assert!(run.p95_ms >= expect_ms[expect_ms.len() - 2] - 0.5);
    assert!(run.max_ms > service_s * 1e3);
}

#[test]
fn open_loop_p95_dominates_closed_loop_at_matched_load() {
    // A 5 ms service saturates at 200 rps. The closed loop never notices:
    // its one client waits for each reply, so it offers exactly the rate
    // the service sustains and every sample reads ~5 ms. The open loop
    // offered 2x saturation sees the backlog grow without bound over the
    // run, so its p95 from scheduled arrival must be at least the
    // closed-loop p95 — this is the coordinated-omission fix, stated as an
    // inequality.
    let service = SearchService::start(tiny_snapshot(), 1);
    let dur = Duration::from_millis(5);

    let mut closed: Vec<f64> = (0..32)
        .map(|_| {
            let t = Instant::now();
            service
                .submit_sleeping(dur)
                .wait()
                .expect("service replies");
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    closed.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let closed_p95 = percentile(&closed, 0.95);

    let ops = openloop_schedule(13, 24, 400.0, search_only(), 1, 0);
    let cfg = OpenLoopConfig {
        workers: 1,
        sync_clients: 1,
        timeout_ms: 10_000.0,
        inject_sleep: Some(dur),
        ..Default::default()
    };
    let queries = vec![vec!["x".to_string()]];
    let run = run_open_loop(&service, &queries, &[], &ops, &cfg);

    assert_eq!(run.completed, 24, "failures: {}", run.failures);
    assert!(
        run.p95_ms >= closed_p95,
        "open-loop p95 {:.3} ms below closed-loop p95 {:.3} ms at 2x saturation",
        run.p95_ms,
        closed_p95
    );
}

#[test]
fn capacity_sweep_finds_a_knee_with_deterministic_counts() {
    // A generous SLO over real mixed traffic (searches injected at 1 ms;
    // diversified/session/ingest ops do their real work on the tiny
    // fixture): the first rung must hold it, so the sweep reports a
    // nonzero knee, and the rate-independent schedule gives both sweeps
    // identical per-mode counts.
    let data = ImdbDataset::generate(ImdbConfig::tiny(5)).unwrap();
    let plan = holdout_plan(
        &data.db,
        IngestConfig {
            seed: 9,
            holdout: 0.05,
            batches: 3,
        },
    );
    let catalog = TemplateCatalog::enumerate(&plan.initial, 4, 100_000).unwrap();
    let index = InvertedIndex::build(&plan.initial);
    let snap = Arc::new(SearchSnapshot::new(
        plan.initial.clone(),
        index,
        catalog,
        InterpreterConfig::default(),
    ));
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 6,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = workload
        .queries
        .iter()
        .map(|q| q.keywords.clone())
        .collect();

    let cfg = SweepConfig {
        seed: 23,
        n_ops: 40,
        start_rps: 200.0,
        growth: 1.25,
        max_rungs: 2,
        mix: MixWeights::default(),
        slo: SloConfig {
            p95_ms: 500.0,
            max_failure_rate: 0.05,
        },
        open: OpenLoopConfig {
            workers: 2,
            sync_clients: 1,
            timeout_ms: 5_000.0,
            inject_sleep: Some(Duration::from_millis(1)),
            ..Default::default()
        },
    };
    let a = sweep_capacity(&snap, &queries, &plan.batches, &cfg);
    assert!(
        a.capacity_rps > 0.0,
        "first rung failed the SLO: {:?}",
        a.rungs
            .iter()
            .map(|r| (r.target_rps, r.run.p95_ms, r.run.failures, r.run.timeouts))
            .collect::<Vec<_>>()
    );
    assert!(a.p95_at_capacity_ms.is_finite());
    assert!(!a.rungs.is_empty() && a.rungs.len() <= 2);
    let total = a.counts.search + a.counts.diversified + a.counts.session + a.counts.ingest;
    assert_eq!(total, 40);
    assert!(a.counts.ingest <= plan.batches.len());

    let b = sweep_capacity(&snap, &queries, &plan.batches, &cfg);
    assert_eq!(a.counts, b.counts, "schedule counts must be reproducible");
}
