//! Fig. 6.2 — Distribution of shared instances in Freebase.
//!
//! For instances shared between the ontology and the database: how many
//! database *domains* each occurs in. The thesis's point: most shared
//! instances live in few domains, with a popular minority spanning many —
//! the overlap signal the matching exploits.

use keybridge_bench::print_table;
use keybridge_datagen::{FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};
use keybridge_yagof::shared_instance_distribution;

fn main() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 50,
        types_per_domain: 20,
        topics: 20_000,
        rows_per_table: 25,
        seed: 61,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let yago = YagoOntology::generate(
        YagoConfig {
            leaf_categories: 3000,
            ..Default::default()
        },
        &fb,
    );
    let rows: Vec<Vec<String>> = shared_instance_distribution(&yago, &fb)
        .into_iter()
        .map(|(domains, topics)| vec![domains.to_string(), topics.to_string()])
        .collect();
    print_table(
        "Fig. 6.2 shared instances by number of Freebase domains",
        &["#domains", "#shared instances"],
        &rows,
    );
}
