//! Table 6.1 — Distribution of categories in YAGO.
//!
//! The YAGO-like ontology's categories by kind: the WordNet upper taxonomy
//! and the four Wikipedia-category kinds the thesis distinguishes. Only
//! conceptual categories describe entity classes and are candidates for
//! matching against database tables.

use keybridge_bench::print_table;
use keybridge_datagen::{FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};
use keybridge_yagof::category_kind_distribution;

fn main() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 50,
        types_per_domain: 20,
        topics: 20_000,
        rows_per_table: 25,
        seed: 61,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let yago = YagoOntology::generate(
        YagoConfig {
            leaf_categories: 3000,
            ..Default::default()
        },
        &fb,
    );
    let rows: Vec<Vec<String>> = category_kind_distribution(&yago)
        .into_iter()
        .map(|r| {
            vec![
                r.kind.label().to_string(),
                r.categories.to_string(),
                r.instance_links.to_string(),
                format!("{:.1}", r.avg_instances),
            ]
        })
        .collect();
    print_table(
        "Table 6.1 distribution of categories in YAGO-like ontology",
        &["kind", "categories", "instance links", "avg instances"],
        &rows,
    );
    println!(
        "total categories: {}  distinct instances: {}",
        yago.categories.len(),
        yago.distinct_instances()
    );
}
