//! Fig. 4.2 — α-nDCG-W for diversification vs ranking.
//!
//! The 25 most ambiguous single-concept (sc) and multi-concept (mc) queries
//! per dataset; for each, the relevance-ranked order and the diversified
//! order (λ = 0.1) are scored with α-nDCG-W at k = 1..10 for
//! α ∈ {0, 0.5, 0.99}. The paper's findings: with α = 0 ranking dominates,
//! and the advantage of diversification appears and grows as α → 1.

use keybridge_bench::{ch4_query_set, imdb_fixture, lyrics_fixture, print_table, Ch4Data, Fixture};
use keybridge_core::{ProbabilityConfig, TemplatePrior};
use keybridge_divq::{alpha_ndcg_w, diversify, DivItem, DiversifyConfig};

const K: usize = 10;

/// Average α-nDCG-W curves over a query class for both orderings.
fn curves(queries: &[Ch4Data], alpha: f64) -> (Vec<f64>, Vec<f64>) {
    let mut rank_sum = vec![0.0; K];
    let mut div_sum = vec![0.0; K];
    let mut n = 0usize;
    for d in queries {
        let pool = d.eval_items();
        // Ranking order = as generated.
        let rank_scores = alpha_ndcg_w(&pool, &pool, alpha, K);
        // Diversified order.
        let items: Vec<DivItem> = d
            .probs
            .iter()
            .zip(&d.atoms)
            .map(|(p, a)| DivItem {
                relevance: *p,
                atoms: a.clone(),
            })
            .collect();
        let order = diversify(
            &items,
            DiversifyConfig {
                lambda: 0.1,
                k: pool.len(),
            },
        );
        let diversified: Vec<_> = order.iter().map(|&i| pool[i].clone()).collect();
        let div_scores = alpha_ndcg_w(&diversified, &pool, alpha, K);
        for i in 0..K {
            rank_sum[i] += rank_scores[i];
            div_sum[i] += div_scores[i];
        }
        n += 1;
    }
    let n = n.max(1) as f64;
    (
        rank_sum.into_iter().map(|s| s / n).collect(),
        div_sum.into_iter().map(|s| s / n).collect(),
    )
}

fn run(fixture: &Fixture) {
    let divq_prob = ProbabilityConfig {
        unmapped_prob: 1e-4, // partials visible in the pool (§4.4.2)
        ..Default::default()
    };
    let interp = fixture.interpreter(divq_prob, TemplatePrior::Uniform);
    let (sc, mc) = ch4_query_set(fixture, &interp, 25);
    println!(
        "\n{}: {} sc queries, {} mc queries",
        fixture.name,
        sc.len(),
        mc.len()
    );
    for alpha in [0.0, 0.5, 0.99] {
        let (rank_sc, div_sc) = curves(&sc, alpha);
        let (rank_mc, div_mc) = curves(&mc, alpha);
        let rows: Vec<Vec<String>> = (0..K)
            .map(|i| {
                vec![
                    (i + 1).to_string(),
                    format!("{:.3}", rank_sc[i]),
                    format!("{:.3}", div_sc[i]),
                    format!("{:.3}", rank_mc[i]),
                    format!("{:.3}", div_mc[i]),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 4.2 ({}) α-nDCG-W, α = {alpha}", fixture.name),
            &["k", "Rank sc", "Div sc", "Rank mc", "Div mc"],
            &rows,
        );
    }
}

fn main() {
    run(&imdb_fixture(21));
    run(&lyrics_fixture(22));
}
