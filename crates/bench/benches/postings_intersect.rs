//! Postings-intersection microbench: the three codepaths of
//! `for_each_joint_row` over the adaptive postings representation.
//!
//! * **bitmap-AND** — every list dense enough for the fixed-width bitmap
//!   repr: the joint walk is a word-at-a-time AND over the overlap window;
//! * **varint-leapfrog** — every list sparse (LEB128 gap coding): k-way
//!   leapfrog with linear varint seeks;
//! * **mixed** — a dense bitmap probed by a sparse gaps list: leapfrog
//!   advance, but the bitmap cursor seeks by bit arithmetic instead of
//!   decoding.
//!
//! Each scenario asserts the representations it claims to measure (the
//! density threshold picked the repr, not the bench), so the `--test` run
//! CI does is also a cheap correctness pass over the dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use keybridge_index::{for_each_joint_row, PostingsRepr, TermAttrEntry};
use keybridge_relstore::RowId;
use std::time::Duration;

/// A postings list of `n` rows at fixed `stride` starting at `offset`, with
/// cycling term frequencies. Density is 1/stride, so the canonical repr is
/// Bitmap for stride <= 32 and Gaps above (for n >= 16).
fn entry(stride: u32, n: u32, offset: u32) -> TermAttrEntry {
    let pairs: Vec<(RowId, u32)> = (0..n)
        .map(|i| (RowId(offset + i * stride), i % 7 + 1))
        .collect();
    TermAttrEntry::from_pairs(&pairs)
}

/// Intersection size via the joint walk — the measured routine.
fn joint_count(lists: &[&TermAttrEntry]) -> usize {
    let mut count = 0usize;
    for_each_joint_row(lists, |_, _| {
        count += 1;
        true
    });
    count
}

fn bench_intersect(c: &mut Criterion) {
    // Dense lists: coprime strides so the intersection is sparse relative
    // to either input — the AND walk does real skipping work.
    let dense_a = entry(2, 40_000, 0);
    let dense_b = entry(3, 26_000, 0);
    let dense_c = entry(5, 16_000, 0);
    for e in [&dense_a, &dense_b, &dense_c] {
        assert_eq!(e.repr(), PostingsRepr::Bitmap, "dense lists must pack");
    }
    // Sparse lists over the same row universe (offset 8 keeps them on the
    // even rows, so they genuinely overlap the dense lists: the mixed probe
    // hits dense_b every third row instead of never).
    let sparse_a = entry(40, 2_000, 8);
    let sparse_b = entry(48, 1_600, 8);
    for e in [&sparse_a, &sparse_b] {
        assert_eq!(e.repr(), PostingsRepr::Gaps, "sparse lists must stay gaps");
    }

    c.bench_function("intersect_bitmap_and_2way", |b| {
        b.iter(|| joint_count(&[&dense_a, &dense_b]))
    });
    c.bench_function("intersect_bitmap_and_3way", |b| {
        b.iter(|| joint_count(&[&dense_a, &dense_b, &dense_c]))
    });
    c.bench_function("intersect_varint_leapfrog_2way", |b| {
        b.iter(|| joint_count(&[&sparse_a, &sparse_b]))
    });
    c.bench_function("intersect_mixed_bitmap_probe", |b| {
        b.iter(|| joint_count(&[&dense_b, &sparse_a]))
    });

    let sizes = [
        joint_count(&[&dense_a, &dense_b]),
        joint_count(&[&dense_a, &dense_b, &dense_c]),
        joint_count(&[&sparse_a, &sparse_b]),
        joint_count(&[&dense_b, &sparse_a]),
    ];
    assert!(
        sizes.iter().all(|&n| n > 0),
        "every scenario must produce a non-empty intersection: {sizes:?}"
    );
    println!(
        "sizes: and2 {}  and3 {}  leapfrog {}  mixed {}",
        sizes[0], sizes[1], sizes[2], sizes[3],
    );
}

/// `cargo bench ... -- --test` (the CI lint job) shrinks the run to a
/// smoke-speed correctness pass; the assertions above still fire.
fn config() -> Criterion {
    if std::env::args().any(|a| a == "--test") {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
    } else {
        Criterion::default()
    }
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_intersect
);
criterion_main!(benches);
