//! Executor experiment — batched hash-join engine vs. the naive
//! nested-loop oracle, and the end-to-end streaming `answers_top_k` path.
//!
//! Not a figure of the paper: this measures the infrastructure the paper
//! presumes ("the user gets results"). For each fixture (IMDB, Lyrics) the
//! harness takes the workload's keyword queries, pulls the top-10
//! interpretations best-first, and reports per-strategy executor counters —
//! intermediate bindings materialized, hash probes, semi-join reduction —
//! plus wall-clock for full execution and for streaming the top-10 answers.

use keybridge_bench::{imdb_fixture, lyrics_fixture, mean, print_table, Fixture};
use keybridge_core::{execute_interpretation, KeywordQuery, TemplatePrior};
use keybridge_relstore::{ExecOptions, ExecStats, ExecStrategy};
use std::time::Instant;

fn run_fixture(f: &Fixture, queries: usize) -> Vec<String> {
    let interpreter = f.interpreter(
        keybridge_core::ProbabilityConfig::default(),
        TemplatePrior::Uniform,
    );
    let mut nv_total = ExecStats::default();
    let mut hj_total = ExecStats::default();
    let mut t_nv = Vec::new();
    let mut t_hj = Vec::new();
    let mut t_ans = Vec::new();
    let mut answer_intermediates = Vec::new();
    let mut evaluated = 0usize;
    for q in f.workload.queries.iter().take(queries) {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interpreter.top_k(&query, 10);
        if ranked.is_empty() {
            continue;
        }
        evaluated += 1;
        for (strategy, total, times) in [
            (ExecStrategy::Naive, &mut nv_total, &mut t_nv),
            (ExecStrategy::HashJoin, &mut hj_total, &mut t_hj),
        ] {
            let t = Instant::now();
            for s in &ranked {
                if let Ok(r) = execute_interpretation(
                    &f.db,
                    &f.index,
                    &f.catalog,
                    &s.interpretation,
                    ExecOptions {
                        limit: 10_000,
                        strategy,
                        ..Default::default()
                    },
                ) {
                    total.absorb(&r.stats);
                }
            }
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let t = Instant::now();
        let (_, astats) = interpreter.answers_top_k_with_stats(&query, 10);
        t_ans.push(t.elapsed().as_secs_f64() * 1e3);
        answer_intermediates.push(astats.exec.intermediate_bindings as f64);
    }
    vec![
        f.name.to_string(),
        evaluated.to_string(),
        nv_total.intermediate_bindings.to_string(),
        hj_total.intermediate_bindings.to_string(),
        format!("{:.0}", mean(&answer_intermediates)),
        format!("{:.0}%", hj_total.semijoin_reduction() * 100.0),
        hj_total.batches.to_string(),
        hj_total.probes.to_string(),
        format!("{:.2}", mean(&t_nv)),
        format!("{:.2}", mean(&t_hj)),
        format!("{:.2}", mean(&t_ans)),
    ]
}

fn main() {
    let queries = 25;
    let rows = vec![
        run_fixture(&imdb_fixture(1), queries),
        run_fixture(&lyrics_fixture(2), queries),
    ];
    print_table(
        "Executor: naive vs. batched hash join vs. streaming answers (top-10, per query)",
        &[
            "dataset",
            "queries",
            "naive interm.",
            "hj interm.",
            "answers interm.",
            "semijoin pruned",
            "hj batches",
            "hj probes",
            "naive ms",
            "hj ms",
            "answers ms",
        ],
        &rows,
    );
}
