//! Fig. 4.1 — Selecting meaningful query interpretations.
//!
//! For each evaluation query, the probability ratio at rank i is
//! `PR_i = P(Q_i|K) / Σ_{j<i} P(Q_j|K)`. The figure reports the maximum and
//! average ratio per rank across queries; the paper's finding is that the
//! ratio collapses quickly (≈0.01 by rank 10), justifying the top-25 cut
//! used for the user study.

use keybridge_bench::{ch4_query_set, imdb_fixture, lyrics_fixture, print_table, Fixture};
use keybridge_core::{ProbabilityConfig, TemplatePrior};

fn run(fixture: &Fixture) {
    let divq_prob = ProbabilityConfig {
        unmapped_prob: 1e-4, // partials visible in the pool (§4.4.2)
        ..Default::default()
    };
    let interp = fixture.interpreter(divq_prob, TemplatePrior::Uniform);
    let (sc, mc) = ch4_query_set(fixture, &interp, 25);
    let all: Vec<_> = sc.into_iter().chain(mc).collect();

    let max_rank = 25usize;
    let mut rows = Vec::new();
    for rank in 2..=max_rank {
        let mut ratios = Vec::new();
        for d in &all {
            if d.probs.len() < rank {
                continue;
            }
            let prefix: f64 = d.probs[..rank - 1].iter().sum();
            if prefix > 0.0 {
                ratios.push(d.probs[rank - 1] / prefix);
            }
        }
        if ratios.is_empty() {
            continue;
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        rows.push(vec![
            rank.to_string(),
            ratios.len().to_string(),
            format!("{max:.4}"),
            format!("{avg:.4}"),
        ]);
    }
    print_table(
        &format!("Fig. 4.1 ({}) probability ratio by rank", fixture.name),
        &["rank", "queries", "max PR", "avg PR"],
        &rows,
    );
}

fn main() {
    run(&imdb_fixture(21));
    run(&lyrics_fixture(22));
}
