//! Table 3.3 — Performance of the greedy algorithm vs number of keywords.
//!
//! The §3.8.5 simulation with a fixed 10-table schema and 2–10 keywords.
//! The paper's finding: the interpretation space grows exponentially with
//! keyword count, but the options a user evaluates grow only linearly.

use keybridge_bench::print_table;
use keybridge_iqp::{SimConfig, SimSpace};
use std::time::Duration;

fn main() {
    let thresholds = [10usize, 20, 30];
    let runs = 20u64;
    let mut rows = Vec::new();
    for &n_keywords in &[2usize, 4, 6, 8, 10] {
        let mut row = vec![n_keywords.to_string()];
        let mut space_reported = false;
        for &threshold in &thresholds {
            let mut total_steps = 0usize;
            let mut total_time = Duration::ZERO;
            let mut completed = 0usize;
            let mut space = 0u128;
            for run in 0..runs {
                let cfg = SimConfig::paper(10, n_keywords, threshold, run);
                let sim = SimSpace::generate(cfg);
                if let Some(report) = sim.run_construction(2000 + run) {
                    space = report.space_size;
                    total_steps += report.steps;
                    total_time += report.option_time;
                    completed += 1;
                }
            }
            if !space_reported {
                row.push(space.to_string());
                space_reported = true;
            }
            let avg_steps = total_steps as f64 / completed.max(1) as f64;
            let time_per_step = if total_steps > 0 {
                total_time.as_secs_f64() * 1000.0 / total_steps as f64
            } else {
                0.0
            };
            row.push(format!("{avg_steps:.0}"));
            row.push(format!("{time_per_step:.2} ms"));
        }
        rows.push(row);
    }
    print_table(
        "Table 3.3 greedy algorithm vs number of keywords (10 tables, 20 runs/cell)",
        &[
            "#keywords",
            "#queries",
            "T=10 steps",
            "T=10 t/step",
            "T=20 steps",
            "T=20 t/step",
            "T=30 steps",
            "T=30 t/step",
        ],
        &rows,
    );
}
