//! Fig. 3.7 — Usability of query construction (simulated §3.8.4 user study).
//!
//! The study designed 14 tasks whose *intended* interpretation sits on page
//! k of the ranked list (20 queries per page, categories 0–11) and compared
//! wall-clock task time under the ranking interface vs the construction
//! interface. We reproduce the design: for each category, ambiguous
//! workload queries with a large enough interpretation space are taken and
//! the interpretation at rank `20·k + 10` is designated the intent; the
//! construction session runs toward it, and both costs are converted to
//! seconds with the two-rate time model. The paper's finding: ranking wins
//! categories 0–2 (ranks < 40), construction wins from ranks ≈ 40–80, and
//! at category 11 ranking takes ≈ 4x longer.

use keybridge_bench::{imdb_fixture, print_table};
use keybridge_core::{KeywordQuery, ProbabilityConfig, TemplatePrior};
use keybridge_iqp::{median, ConstructionSession, SessionConfig, TimeModel};

fn main() {
    let fixture = imdb_fixture(21);
    let interp = fixture.interpreter(ProbabilityConfig::default(), TemplatePrior::Uniform);
    let model = TimeModel::default();
    let categories = [0usize, 1, 2, 3, 4, 6, 11];

    // Ranked lists of the most ambiguous queries, reused across categories.
    let mut spaces = Vec::new();
    for q in &fixture.workload.queries {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interp.ranked_interpretations(&query);
        if ranked.len() >= 40 {
            spaces.push(ranked);
        }
    }
    spaces.sort_by_key(|r| std::cmp::Reverse(r.len()));

    let mut rows = Vec::new();
    for &cat in &categories {
        let target_rank = cat * 20 + 10;
        let mut rank_times = Vec::new();
        let mut cons_times = Vec::new();
        for ranked in spaces.iter().filter(|r| r.len() > target_rank).take(6) {
            let target = ranked[target_rank - 1].interpretation.clone();
            let mut session =
                ConstructionSession::new(&fixture.catalog, ranked, SessionConfig::default());
            while session.remaining().len() > 5 {
                let Some(option) = session.next_option(&fixture.catalog) else {
                    break;
                };
                let accept = option.subsumed_by(&target, &fixture.catalog);
                session.apply(&fixture.catalog, option, accept);
            }
            let retained = session.remaining().iter().any(|(c, _)| *c == target);
            let t = model.task(
                Some(target_rank),
                session.steps(),
                session.remaining().len(),
            );
            rank_times.push(t.ranking_s);
            // A lost target means the user falls back to scanning (timeout).
            cons_times.push(if retained { t.construction_s } else { 600.0 });
        }
        if rank_times.is_empty() {
            continue;
        }
        let rm = median(&mut rank_times);
        let cm = median(&mut cons_times);
        rows.push(vec![
            cat.to_string(),
            rank_times.len().to_string(),
            format!("{rm:.0}"),
            format!("{cm:.0}"),
            if rm <= cm { "ranking" } else { "construction" }.to_string(),
        ]);
    }
    print_table(
        "Fig. 3.7 (IMDB) median task time by complexity category",
        &["category", "tasks", "ranking s", "construction s", "winner"],
        &rows,
    );
    println!(
        "time model: base {:.0}s, {:.1}s per ranked item, {:.0}s per option; intent at rank 20k+10",
        model.base_s, model.per_rank_item_s, model.per_option_s
    );
}
