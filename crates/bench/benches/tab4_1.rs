//! Table 4.1 — Top-k structured interpretations for a keyword query:
//! relevance ranking vs diversification.
//!
//! Picks the most ambiguous multi-concept workload query and prints its
//! top-3 under pure relevance ranking and under DivQ diversification, with
//! the per-item relevance — the running example of §4.4.

use keybridge_bench::{imdb_fixture, print_table};
use keybridge_core::{render_natural, KeywordQuery, ProbabilityConfig, TemplatePrior};
use keybridge_divq::{diversify, DivItem, DiversifyConfig};

fn main() {
    let fixture = imdb_fixture(21);
    let divq_prob = ProbabilityConfig {
        unmapped_prob: 1e-4, // partials visible in the pool (§4.4.2)
        ..Default::default()
    };
    let interp = fixture.interpreter(divq_prob, TemplatePrior::Uniform);

    // The most ambiguous multi-concept query = largest interpretation space.
    let mut best: Option<(usize, &keybridge_datagen::WorkloadQuery)> = None;
    for q in fixture.workload.multi_concept() {
        let ranked = interp.ranked_with_partials(&KeywordQuery::from_terms(q.keywords.clone()));
        if best.as_ref().is_none_or(|(n, _)| ranked.len() > *n) {
            best = Some((ranked.len(), q));
        }
    }
    let Some((n, q)) = best else {
        println!("no multi-concept queries in workload");
        return;
    };
    let query = KeywordQuery::from_terms(q.keywords.clone());
    // The paper diversifies the top-25 cut justified by Fig. 4.1.
    let mut ranked = interp.ranked_with_partials(&query);
    ranked.truncate(25);
    println!("keyword query: \"{query}\"  ({n} interpretations, top-25 kept)");

    let items: Vec<DivItem> = ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s
                .interpretation
                .atoms(&fixture.catalog)
                .into_iter()
                .collect(),
        })
        .collect();
    let div = diversify(&items, DiversifyConfig { lambda: 0.1, k: 3 });

    let row = |idx: usize| -> (String, String) {
        (
            format!("{:.3}", ranked[idx].probability),
            render_natural(&fixture.db, &fixture.catalog, &ranked[idx].interpretation),
        )
    };
    let mut rows = Vec::new();
    for (i, &d) in div.iter().enumerate().take(3.min(ranked.len())) {
        let (rel_rank, text_rank) = row(i);
        let (rel_div, text_div) = row(d);
        rows.push(vec![rel_rank, text_rank, rel_div, text_div]);
    }
    print_table(
        "Table 4.1 top-3 ranking vs top-3 diversification",
        &["rel", "ranking", "rel", "diversification"],
        &rows,
    );
}
