//! Fig. 3.5 — Effectiveness of the probability estimates.
//!
//! Interaction cost (options evaluated during construction) per keyword
//! query, under three probability estimates: the uniform Baseline,
//! (ATF, Tequal), and (ATF, TLog). The paper's finding: ATF halves the cost
//! against the baseline; the usage prior helps most on Lyrics, where one
//! template dominates the log.

use keybridge_bench::{imdb_fixture, lyrics_fixture, mean, print_table, Fixture};
use keybridge_core::{ProbabilityConfig, TemplatePrior};

fn run(fixture: &Fixture) {
    let conditions: Vec<(&str, ProbabilityConfig, TemplatePrior)> = vec![
        (
            "Baseline",
            ProbabilityConfig::baseline(),
            TemplatePrior::Uniform,
        ),
        (
            "(ATF, Tequal)",
            ProbabilityConfig::default(),
            TemplatePrior::Uniform,
        ),
        (
            "(ATF, TLog)",
            ProbabilityConfig::default(),
            fixture.usage_prior(),
        ),
    ];

    let mut per_condition: Vec<Vec<f64>> = vec![Vec::new(); conditions.len()];
    let mut rows = Vec::new();
    for q in &fixture.workload.queries {
        let mut costs = Vec::with_capacity(conditions.len());
        for (_, prob, prior) in &conditions {
            let interp = fixture.interpreter(*prob, prior.clone());
            match fixture.evaluate(&interp, q) {
                Some(e) => costs.push(Some(e.steps)),
                None => costs.push(None),
            }
        }
        if costs.iter().all(Option::is_some) {
            let costs: Vec<usize> = costs.into_iter().map(Option::unwrap).collect();
            for (i, c) in costs.iter().enumerate() {
                per_condition[i].push(*c as f64);
            }
            rows.push(
                std::iter::once(q.keywords.join(" "))
                    .chain(costs.iter().map(|c| c.to_string()))
                    .collect::<Vec<String>>(),
            );
        }
    }

    // Per-query series (the figure's data points), then the summary.
    print_table(
        &format!(
            "Fig. 3.5 ({}) interaction cost per query ({} evaluable queries)",
            fixture.name,
            rows.len()
        ),
        &["query", "Baseline", "ATF,Tequal", "ATF,TLog"],
        &rows,
    );
    let summary: Vec<Vec<String>> = conditions
        .iter()
        .zip(&per_condition)
        .map(|((name, _, _), costs)| {
            let below10 =
                costs.iter().filter(|&&c| c < 10.0).count() as f64 / costs.len().max(1) as f64;
            vec![
                name.to_string(),
                format!("{:.2}", mean(costs)),
                format!(
                    "{:.0}",
                    costs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                ),
                format!("{:.0}%", below10 * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 3.5 ({}) summary", fixture.name),
        &["estimate", "mean cost", "max cost", "cost<10"],
        &summary,
    );
}

fn main() {
    run(&imdb_fixture(21));
    run(&lyrics_fixture(22));
}
