//! Fig. 3.6 — Interaction cost of IQP and SQAK ranking vs IQP construction.
//!
//! Boxplot statistics (quartiles, whiskers) of three interaction costs per
//! dataset: the rank of the intent under SQAK's TF-IDF ranking, under IQP's
//! probabilistic ranking, and the number of options evaluated by IQP
//! construction. The paper's finding: IQP ranking has a lower median than
//! SQAK, and construction has a drastically lower *variance* than either.

use keybridge_bench::{imdb_fixture, lyrics_fixture, print_table, Fixture};
use keybridge_core::{sqak_score, ProbabilityConfig, TemplatePrior};
use keybridge_iqp::quartiles;

fn run(fixture: &Fixture) {
    let interp = fixture.interpreter(ProbabilityConfig::default(), TemplatePrior::Uniform);
    let mut rank_iqp: Vec<f64> = Vec::new();
    let mut rank_sqak: Vec<f64> = Vec::new();
    let mut construction: Vec<f64> = Vec::new();

    for q in &fixture.workload.queries {
        let Some(eval) = fixture.evaluate(&interp, q) else {
            continue;
        };
        rank_iqp.push(eval.rank as f64);
        construction.push(eval.steps as f64);

        // Re-rank the same interpretation space with the SQAK scorer.
        let mut scored: Vec<(f64, &keybridge_core::QueryInterpretation)> = eval
            .ranked
            .iter()
            .map(|s| {
                (
                    sqak_score(
                        &fixture.db,
                        &fixture.index,
                        &fixture.catalog,
                        &s.interpretation,
                    ),
                    &s.interpretation,
                )
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let intent = fixture.intent(q);
        if let Some(pos) = scored
            .iter()
            .position(|(_, i)| intent.matches(i, &fixture.db, &fixture.catalog))
        {
            rank_sqak.push((pos + 1) as f64);
        }
    }

    let stat = |name: &str, v: &mut Vec<f64>| -> Vec<String> {
        let (q1, med, q3) = quartiles(v);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        vec![
            name.to_string(),
            v.len().to_string(),
            format!("{min:.0}"),
            format!("{q1:.1}"),
            format!("{med:.1}"),
            format!("{q3:.1}"),
            format!("{max:.0}"),
        ]
    };
    let rows = vec![
        stat("Rank (SQAK)", &mut rank_sqak),
        stat("Rank (IQP)", &mut rank_iqp),
        stat("Construction (IQP)", &mut construction),
    ];
    print_table(
        &format!("Fig. 3.6 ({}) interaction-cost boxplot", fixture.name),
        &["interface", "n", "min", "q1", "median", "q3", "max"],
        &rows,
    );
}

fn main() {
    run(&imdb_fixture(21));
    run(&lyrics_fixture(22));
}
