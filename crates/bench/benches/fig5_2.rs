//! Fig. 5.2 — Efficiency of QCOs and interaction cost vs schema size.
//!
//! Schema sweep from 100 to 4,000 type tables. For 2-keyword ambiguous
//! queries we measure (a) the information gain of the best first option —
//! the §5.5.2 QCO efficiency — and (b) the full-session interaction cost,
//! both with plain schema-level options and with ontology-based options.
//! The paper's finding: plain options lose efficiency as the schema grows
//! (cost climbs), while ontology options keep efficiency roughly constant.

use keybridge_bench::{freebase_fixture, mean, print_table};
use keybridge_core::KeywordQuery;
use keybridge_freeq::{
    qco_efficiency, FreeQSession, FreeQSessionConfig, LazyExplorer, TraversalConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let shapes = [(10usize, 10usize), (25, 20), (40, 25), (50, 40), (80, 50)];
    let queries_per_shape = 8;
    let mut rows = Vec::new();

    for (di, &(domains, types)) in shapes.iter().enumerate() {
        let fixture = freebase_fixture(domains, types, 3000 + domains * 40, 30 + di as u64);
        let mut rng = StdRng::seed_from_u64(99 + di as u64);
        let mut eff_plain = Vec::new();
        let mut eff_onto = Vec::new();
        let mut cost_plain = Vec::new();
        let mut cost_onto = Vec::new();

        for _ in 0..queries_per_shape {
            let Some((keywords, _)) = fixture.sample_query(2, &mut rng) else {
                continue;
            };
            let query = KeywordQuery::from_terms(keywords);
            let explorer = LazyExplorer::new(
                &fixture.fb.db,
                &fixture.index,
                TraversalConfig {
                    top_n: 400,
                    ..Default::default()
                },
            );
            let tops = explorer.top_interpretations(&query);
            if tops.len() < 10 {
                continue;
            }
            let targets: Vec<keybridge_relstore::TableId> = tops[tops.len() * 3 / 4]
                .bindings
                .iter()
                .map(|a| a.table)
                .collect();
            let probs = keybridge_freeq::LazyInterpretation::normalize(&tops);

            // Efficiency of the best available option under each regime.
            let best_eff = |ontology| {
                keybridge_freeq::qco::derive_options(&tops, ontology)
                    .into_iter()
                    .map(|o| qco_efficiency(o, &tops, &probs, ontology))
                    .fold(0.0f64, f64::max)
            };
            eff_plain.push(best_eff(None));
            eff_onto.push(best_eff(Some(&fixture.ontology)));

            // Interaction cost of a full session per regime.
            if let Some(out) = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
                .run_with_target(&targets)
            {
                cost_plain.push(out.steps as f64);
            }
            if let Some(out) =
                FreeQSession::new(Some(&fixture.ontology), tops, FreeQSessionConfig::default())
                    .run_with_target(&targets)
            {
                cost_onto.push(out.steps as f64);
            }
        }
        rows.push(vec![
            (domains * types).to_string(),
            format!("{:.2}", mean(&eff_plain)),
            format!("{:.2}", mean(&eff_onto)),
            format!("{:.1}", mean(&cost_plain)),
            format!("{:.1}", mean(&cost_onto)),
        ]);
    }
    print_table(
        "Fig. 5.2 QCO efficiency (bits) and interaction cost vs schema size",
        &[
            "#tables",
            "eff plain",
            "eff ontology",
            "cost plain",
            "cost ontology",
        ],
        &rows,
    );
}
