//! Fig. 6.4 — Matching quality.
//!
//! Precision and recall of the instance-overlap matching against the
//! generator's gold mapping, as the acceptance threshold sweeps. The
//! thesis assessed quality manually; the synthetic gold standard makes the
//! precision/recall trade-off exact. Expected shape: precision rises with
//! the threshold while recall falls; the harmonic mean peaks in between.

use keybridge_bench::print_table;
use keybridge_datagen::{FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};
use keybridge_yagof::{evaluate_matching, match_categories, MatchConfig};

fn main() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 50,
        types_per_domain: 20,
        topics: 20_000,
        rows_per_table: 25,
        seed: 61,
        scale: 1.0,
    })
    .expect("generation succeeds");
    // Harder setting than the default generator: categories cover only
    // half of their table and carry 30% noise, so matches are confusable.
    let yago = YagoOntology::generate(
        YagoConfig {
            leaf_categories: 3000,
            coverage: 0.5,
            noise: 0.3,
            ..Default::default()
        },
        &fb,
    );
    let mut rows = Vec::new();
    for step in 0..=9 {
        let threshold = 0.05 + step as f64 * 0.1;
        let matches = match_categories(
            &yago,
            &fb,
            MatchConfig {
                threshold,
                min_overlap: 3,
            },
        );
        let q = evaluate_matching(&matches, &yago.gold);
        rows.push(vec![
            format!("{threshold:.2}"),
            q.produced.to_string(),
            q.correct.to_string(),
            format!("{:.3}", q.precision),
            format!("{:.3}", q.recall),
            format!("{:.3}", q.f1),
        ]);
    }
    print_table(
        "Fig. 6.4 matching quality vs acceptance threshold",
        &[
            "threshold",
            "matches",
            "correct",
            "precision",
            "recall",
            "F1",
        ],
        &rows,
    );
}
