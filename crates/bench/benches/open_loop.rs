//! Open-loop serving latency: drive a seeded sub-saturation arrival
//! schedule of mixed search/diversified traffic through the concurrent
//! `SearchService` and report wall-clock per replay. Unlike
//! `serve_throughput` (closed-loop clients that wait for each reply, so a
//! slow service slows its own load down), the arrival instants here are
//! fixed before the run and latency is charged from the *scheduled*
//! arrival — the coordinated-omission-free view. The full SLO capacity
//! sweep lives in `smoke --serve`; this microbench tracks the cost of one
//! rung.
//!
//! Run with: `cargo bench -p keybridge-bench --bench open_loop`

use criterion::{criterion_group, criterion_main, Criterion};
use keybridge_bench::{openloop_schedule, run_open_loop, MixWeights, OpenLoopConfig};
use keybridge_core::{InterpreterConfig, SearchService, SearchSnapshot};
use keybridge_datagen::{ImdbConfig, ImdbDataset, Workload, WorkloadConfig};
use std::sync::Arc;

fn open_loop_rung(c: &mut Criterion) {
    let data = ImdbDataset::generate(ImdbConfig {
        seed: 1,
        actors: 400,
        directors: 100,
        movies: 500,
        companies: 50,
        avg_cast: 3,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 7,
            n_queries: 48,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = workload
        .queries
        .iter()
        .map(|q| q.keywords.clone())
        .collect();
    let snapshot = Arc::new(
        SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 100_000)
            .expect("medium schema"),
    );
    // Read-only mix (no ingest batches in this microbench) at a modest
    // offered rate: the interesting cost is the dispatch + stamped-reply
    // machinery, not a saturation backlog.
    let mix = MixWeights {
        search: 92,
        diversified: 4,
        session: 4,
        ingest: 0,
    };
    let ops = openloop_schedule(23, 60, 150.0, mix, queries.len(), 0);
    let cfg = OpenLoopConfig {
        workers: 2,
        sync_clients: 1,
        ..Default::default()
    };
    c.bench_function("open_loop_60ops_150rps_2w", |b| {
        b.iter(|| {
            let service = SearchService::start(Arc::clone(&snapshot), cfg.workers);
            let run = run_open_loop(&service, &queries, &[], &ops, &cfg);
            assert_eq!(run.offered, ops.len());
            run.p95_ms
        })
    });
}

fn config() -> Criterion {
    // Each iteration replays a fixed 60-op schedule (~0.4 s of scheduled
    // arrivals), so the default 20-sample budget would run minutes.
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = open_loop_rung
}
criterion_main!(benches);
