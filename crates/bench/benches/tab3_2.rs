//! Table 3.2 — Performance of the greedy algorithm vs database size.
//!
//! The §3.8.5 simulation: random complete-graph schemas of 5–80 tables,
//! 3-keyword queries, 60% keyword-occurrence probability, thresholds
//! 10/20/30, 20 runs per cell. Columns: interpretation-space size, options
//! evaluated (#steps), and time per option generation. The paper's finding:
//! the space grows polynomially with table count while steps grow only
//! mildly, and thresholds past ≈20 stop helping.

use keybridge_bench::print_table;
use keybridge_iqp::{SimConfig, SimSpace};
use std::time::Duration;

fn main() {
    let thresholds = [10usize, 20, 30];
    let runs = 20u64;
    let mut rows = Vec::new();
    for &n_tables in &[5usize, 10, 20, 40, 80] {
        let mut row = vec![n_tables.to_string()];
        let mut space_reported = false;
        for &threshold in &thresholds {
            let mut total_steps = 0usize;
            let mut total_time = Duration::ZERO;
            let mut completed = 0usize;
            let mut space = 0u128;
            for run in 0..runs {
                let cfg = SimConfig::paper(n_tables, 3, threshold, run);
                let sim = SimSpace::generate(cfg);
                if let Some(report) = sim.run_construction(1000 + run) {
                    space = report.space_size;
                    total_steps += report.steps;
                    total_time += report.option_time;
                    completed += 1;
                }
            }
            if !space_reported {
                row.push(space.to_string());
                space_reported = true;
            }
            let avg_steps = total_steps as f64 / completed.max(1) as f64;
            let time_per_step = if total_steps > 0 {
                total_time.as_secs_f64() * 1000.0 / total_steps as f64
            } else {
                0.0
            };
            row.push(format!("{avg_steps:.0}"));
            row.push(format!("{time_per_step:.2} ms"));
        }
        rows.push(row);
    }
    print_table(
        "Table 3.2 greedy algorithm vs database size (3 keywords, 20 runs/cell)",
        &[
            "#tables",
            "#queries",
            "T=10 steps",
            "T=10 t/step",
            "T=20 steps",
            "T=20 t/step",
            "T=30 steps",
            "T=30 t/step",
        ],
        &rows,
    );
}
