//! Table 6.3 — Distribution of the categories and instances in YAGO+F.
//!
//! After instance-overlap matching: how much of the ontology received a
//! table, how much of the database is attached, and the instance coverage
//! of the combined structure, per matched-category kind.

use keybridge_bench::print_table;
use keybridge_datagen::{CategoryKind, FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};
use keybridge_yagof::{combine, match_categories, MatchConfig};

fn main() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 50,
        types_per_domain: 20,
        topics: 20_000,
        rows_per_table: 25,
        seed: 61,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let yago = YagoOntology::generate(
        YagoConfig {
            leaf_categories: 3000,
            ..Default::default()
        },
        &fb,
    );
    let matches = match_categories(&yago, &fb, MatchConfig::default());
    let yf = combine(&matches);
    let stats = yf.stats(&yago, &fb);

    let rows = vec![
        vec!["leaf categories".into(), yago.leaves().count().to_string()],
        vec![
            "matched categories".into(),
            stats.matched_categories.to_string(),
        ],
        vec![
            "  of kind conceptual".into(),
            yf.matched_of_kind(&yago, CategoryKind::Conceptual)
                .to_string(),
        ],
        vec![
            "  of kind thematic".into(),
            yf.matched_of_kind(&yago, CategoryKind::Thematic)
                .to_string(),
        ],
        vec![
            "  of kind relational".into(),
            yf.matched_of_kind(&yago, CategoryKind::Relational)
                .to_string(),
        ],
        vec![
            "  of kind administrative".into(),
            yf.matched_of_kind(&yago, CategoryKind::Administrative)
                .to_string(),
        ],
        vec!["attached tables".into(), stats.attached_tables.to_string()],
        vec![
            "table coverage".into(),
            format!("{:.1}%", stats.table_coverage * 100.0),
        ],
        vec![
            "instances under matched categories".into(),
            stats.covered_instances.to_string(),
        ],
        vec![
            "instances of attached tables".into(),
            stats.covered_table_instances.to_string(),
        ],
    ];
    print_table(
        "Table 6.3 the combined YAGO+F structure",
        &["statistic", "value"],
        &rows,
    );
}
