//! Table 5.2 — Complexity of keyword queries over the very large database.
//!
//! Paper-scale schema; query classes by keyword count. Columns: the full
//! interpretation-space size (which cannot be materialized) and the number
//! of interpretations the lazy traversal actually materializes. The paper's
//! point: the space explodes with query length while the explored slice
//! stays bounded.

use keybridge_bench::{freebase_fixture, mean, print_table};
use keybridge_core::KeywordQuery;
use keybridge_freeq::{LazyExplorer, TraversalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fixture = freebase_fixture(100, 70, 60_000, 41);
    let mut rng = StdRng::seed_from_u64(5);
    let explorer = LazyExplorer::new(
        &fixture.fb.db,
        &fixture.index,
        TraversalConfig {
            top_n: 300,
            per_keyword_candidates: 128,
            ..Default::default()
        },
    );
    let mut rows = Vec::new();
    for n_keywords in 1..=4usize {
        let mut spaces = Vec::new();
        let mut materialized = Vec::new();
        for _ in 0..10 {
            let Some((keywords, _)) = fixture.sample_query(n_keywords, &mut rng) else {
                continue;
            };
            let query = KeywordQuery::from_terms(keywords);
            spaces.push(explorer.space_size(&query) as f64);
            materialized.push(explorer.top_interpretations(&query).len() as f64);
        }
        rows.push(vec![
            n_keywords.to_string(),
            spaces.len().to_string(),
            format!("{:.2e}", mean(&spaces)),
            format!("{:.0}", mean(&materialized)),
        ]);
    }
    print_table(
        "Table 5.2 complexity of keyword queries (7,000 tables)",
        &["#keywords", "queries", "avg space size", "materialized"],
        &rows,
    );
}
