//! Table 3.4 — Result quality of the two planning algorithms.
//!
//! Brute-force optimal query construction plans (Alg. 3.1) vs greedy
//! information-gain plans, on small abstract problems: 8–24 queries, 4–12
//! options, each option subsuming a random half of the queries, random
//! probabilities, 20 repetitions per row. The paper's finding: greedy plan
//! cost is only slightly above optimal.

use keybridge_bench::print_table;
use keybridge_iqp::{brute_force_plan, greedy_plan, PlanProblem};

fn main() {
    let cells = [(8usize, 4usize), (12, 6), (16, 8), (20, 10), (24, 12)];
    let repetitions = 20u64;
    let mut rows = Vec::new();
    for &(m, n) in &cells {
        let mut bf_total = 0.0;
        let mut greedy_total = 0.0;
        for seed in 0..repetitions {
            let problem = PlanProblem::random(m, n, seed * 31 + m as u64);
            let (_, bf) = brute_force_plan(&problem);
            let (_, gr) = greedy_plan(&problem);
            bf_total += bf;
            greedy_total += gr;
        }
        let bf_avg = bf_total / repetitions as f64;
        let gr_avg = greedy_total / repetitions as f64;
        rows.push(vec![
            m.to_string(),
            n.to_string(),
            format!("{bf_avg:.6}"),
            format!("{gr_avg:.6}"),
            format!("{:+.2}%", (gr_avg / bf_avg - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Table 3.4 plan cost: brute force vs greedy (20 runs/row)",
        &[
            "#structured queries",
            "#construction options",
            "brute force cost",
            "greedy cost",
            "gap",
        ],
        &rows,
    );
}
