//! Fig. 5.5 — Response time of query construction over Freebase.
//!
//! At paper scale (7,000 tables), the system-side latencies a user
//! experiences per step: materializing the top of the interpretation space
//! (lazy traversal) and generating the next construction option, as the
//! number of materialized interpretations grows. The paper's finding:
//! response time stays interactive (well under a second per step).

use keybridge_bench::{freebase_fixture, mean, print_table};
use keybridge_core::KeywordQuery;
use keybridge_freeq::{FreeQSession, FreeQSessionConfig, LazyExplorer, TraversalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let fixture = freebase_fixture(100, 70, 60_000, 41);
    let mut rng = StdRng::seed_from_u64(17);
    let mut rows = Vec::new();

    for &top_n in &[100usize, 200, 400, 800] {
        let mut traversal_ms = Vec::new();
        let mut option_ms = Vec::new();
        let mut produced = Vec::new();
        for _ in 0..6 {
            let Some((keywords, _)) = fixture.sample_query(2, &mut rng) else {
                continue;
            };
            let query = KeywordQuery::from_terms(keywords);
            let explorer = LazyExplorer::new(
                &fixture.fb.db,
                &fixture.index,
                TraversalConfig {
                    top_n,
                    per_keyword_candidates: 128,
                    ..Default::default()
                },
            );
            let t0 = Instant::now();
            let tops = explorer.top_interpretations(&query);
            traversal_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
            produced.push(tops.len() as f64);
            if tops.len() < 5 {
                continue;
            }
            // Time the first five option generations of a session.
            let mut session =
                FreeQSession::new(Some(&fixture.ontology), tops, FreeQSessionConfig::default());
            for _ in 0..5 {
                let t1 = Instant::now();
                let Some(option) = session.next_option() else {
                    break;
                };
                option_ms.push(t1.elapsed().as_secs_f64() * 1000.0);
                // Simulate a rejection to keep the session moving.
                session.apply(option, false);
                if session.remaining().len() <= 1 {
                    break;
                }
            }
        }
        rows.push(vec![
            top_n.to_string(),
            format!("{:.0}", mean(&produced)),
            format!("{:.2}", mean(&traversal_ms)),
            format!("{:.2}", mean(&option_ms)),
        ]);
    }
    print_table(
        "Fig. 5.5 response time over Freebase-scale data (7,000 tables)",
        &["top-N", "materialized", "traversal ms", "option-gen ms"],
        &rows,
    );
}
