//! Table 6.2 — Distribution of instances in YAGO.
//!
//! How many instances leaf categories hold: a bucketed histogram (category
//! size → number of categories, instance links). The thesis's point: most
//! categories are small, a heavy tail holds most of the instance mass.

use keybridge_bench::print_table;
use keybridge_datagen::{FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};
use keybridge_yagof::instance_histogram;

fn main() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 50,
        types_per_domain: 20,
        topics: 20_000,
        rows_per_table: 25,
        seed: 61,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let yago = YagoOntology::generate(
        YagoConfig {
            leaf_categories: 3000,
            ..Default::default()
        },
        &fb,
    );
    let rows: Vec<Vec<String>> = instance_histogram(&yago)
        .into_iter()
        .map(|(bound, cats, links)| {
            let label = if bound == usize::MAX {
                "> 1024".to_string()
            } else {
                format!("<= {bound}")
            };
            vec![label, cats.to_string(), links.to_string()]
        })
        .collect();
    print_table(
        "Table 6.2 distribution of instances over YAGO-like categories",
        &["category size", "categories", "instance links"],
        &rows,
    );
}
