//! Criterion microbenches over the pipeline's hot paths, including the
//! ablations DESIGN.md calls out: index construction, interpretation
//! generation, probabilistic vs SQAK scoring, greedy option selection,
//! diversification with and without the early-stop bound, join execution,
//! and the lazy traversal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use keybridge_core::{
    execute_interpretation, sqak_score, Interpreter, InterpreterConfig, KeywordQuery,
    ProbabilityConfig, ProbabilityModel, TemplateCatalog, TemplatePrior,
};
use keybridge_datagen::{FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset};
use keybridge_divq::{diversify, DivItem, DiversifyConfig};
use keybridge_freeq::{LazyExplorer, TraversalConfig};
use keybridge_index::InvertedIndex;
use keybridge_iqp::{ConstructionSession, SessionConfig};
use keybridge_relstore::ExecOptions;

fn bench_pipeline(c: &mut Criterion) {
    let data = ImdbDataset::generate(ImdbConfig::default()).unwrap();
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).unwrap();
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
    let query = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
    let ranked = interpreter.ranked_interpretations(&query);

    c.bench_function("index_build_imdb", |b| {
        b.iter(|| InvertedIndex::build(&data.db))
    });

    c.bench_function("template_enumeration_imdb", |b| {
        b.iter(|| TemplateCatalog::enumerate(&data.db, 4, 100_000).unwrap())
    });

    c.bench_function("interpretation_generation_2kw", |b| {
        b.iter(|| interpreter.ranked_interpretations(&query))
    });

    c.bench_function("top10_best_first_2kw", |b| {
        b.iter(|| interpreter.top_k_complete(&query, 10))
    });

    // The headline comparison: a 4-keyword query with partial
    // interpretations enabled — the exhaustive pipeline re-enumerates every
    // keyword subset (2^4 passes), best-first folds the lattice into one
    // search. Also report how many interpretations each side materializes.
    let query4 = KeywordQuery::from_terms(vec![
        "hanks".into(),
        "terminal".into(),
        "actor".into(),
        "movie".into(),
    ]);
    c.bench_function("partials_exhaustive_4kw", |b| {
        b.iter(|| interpreter.ranked_with_partials(&query4))
    });
    c.bench_function("partials_top10_best_first_4kw", |b| {
        b.iter(|| interpreter.top_k(&query4, 10))
    });
    {
        let exhaustive = interpreter.ranked_with_partials(&query4).len();
        let (_, stats) = interpreter.top_k_with_stats(&query4, 10, true);
        println!(
            "4kw partials: exhaustive materialized {exhaustive}, best-first {} \
             ({} expanded, {} pruned, {}/{} non-emptiness probes cached)",
            stats.materialized,
            stats.expanded,
            stats.pruned,
            stats.nonempty_cache_hits,
            stats.nonempty_cache_hits + stats.nonempty_probes,
        );
    }

    // Ablation: ATF scoring vs SQAK TF-IDF scoring over the same space.
    let model = ProbabilityModel::new(
        &data.db,
        &index,
        &catalog,
        TemplatePrior::Uniform,
        ProbabilityConfig::default(),
    );
    c.bench_function("score_atf_joint", |b| {
        b.iter(|| {
            ranked
                .iter()
                .map(|s| model.log_score(&s.interpretation, 2))
                .sum::<f64>()
        })
    });
    c.bench_function("score_sqak", |b| {
        b.iter(|| {
            ranked
                .iter()
                .map(|s| sqak_score(&data.db, &index, &catalog, &s.interpretation))
                .sum::<f64>()
        })
    });

    if !ranked.is_empty() {
        c.bench_function("session_next_option", |b| {
            let session = ConstructionSession::new(&catalog, &ranked, SessionConfig::default());
            b.iter(|| session.next_option(&catalog))
        });

        c.bench_function("execute_interpretation_top1", |b| {
            b.iter(|| {
                execute_interpretation(
                    &data.db,
                    &index,
                    &catalog,
                    &ranked[0].interpretation,
                    ExecOptions::default(),
                )
                .unwrap()
            })
        });
    }

    // Diversification: early-stop bound vs brute scan is verified equal in
    // unit tests; here we measure the bounded version at realistic size.
    let items: Vec<DivItem> = ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(&catalog).into_iter().collect(),
        })
        .collect();
    if items.len() >= 5 {
        c.bench_function("diversify_top10", |b| {
            b.iter_batched(
                || items.clone(),
                |items| diversify(&items, DiversifyConfig { lambda: 0.1, k: 10 }),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_freebase(c: &mut Criterion) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 40,
        types_per_domain: 25,
        topics: 10_000,
        rows_per_table: 25,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let index = InvertedIndex::build(&fb.db);
    // A frequent keyword.
    let kw = {
        let mut best = ("tom".to_owned(), 0usize);
        for (_, row) in fb.db.table(fb.topic).rows().take(200) {
            for tok in row[1].as_text().unwrap_or("").split(' ') {
                let n = index.attrs_containing(tok).len();
                if n > best.1 {
                    best = (tok.to_owned(), n);
                }
            }
        }
        best.0
    };
    let query = KeywordQuery::from_terms(vec![kw.clone(), kw]);
    let explorer = LazyExplorer::new(
        &fb.db,
        &index,
        TraversalConfig {
            top_n: 200,
            ..Default::default()
        },
    );
    c.bench_function("lazy_traversal_top200_1000tables", |b| {
        b.iter(|| explorer.top_interpretations(&query))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_freebase
}
criterion_main!(benches);
