//! Fig. 5.4 — Interaction cost of query construction over Freebase.
//!
//! Paper-scale schema (100 domains × 70 types = 7,000 tables). Queries of
//! 1–3 keywords, ten per complexity class; interaction cost with plain
//! options vs ontology-based options. The paper's finding: ontology QCOs
//! cut the cost by a large factor at this scale.

use keybridge_bench::{freebase_fixture, mean, print_table};
use keybridge_core::KeywordQuery;
use keybridge_freeq::{FreeQSession, FreeQSessionConfig, LazyExplorer, TraversalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fixture = freebase_fixture(100, 70, 60_000, 41);
    println!(
        "schema: {} type tables over {} domains, {} rows",
        fixture.fb.type_table_count(),
        fixture.fb.domains.len(),
        fixture.fb.db.total_rows()
    );
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for n_keywords in 1..=3usize {
        let mut plain = Vec::new();
        let mut onto = Vec::new();
        let mut spaces = Vec::new();
        let mut attempts = 0;
        while plain.len() < 10 && attempts < 60 {
            attempts += 1;
            let Some((keywords, _)) = fixture.sample_query(n_keywords, &mut rng) else {
                break;
            };
            let query = KeywordQuery::from_terms(keywords);
            let explorer = LazyExplorer::new(
                &fixture.fb.db,
                &fixture.index,
                TraversalConfig {
                    top_n: 600,
                    per_keyword_candidates: 128,
                    ..Default::default()
                },
            );
            let tops = explorer.top_interpretations(&query);
            if tops.len() < 10 {
                continue;
            }
            // Intend a low-probability materialized interpretation — the
            // case where ranking fails and construction must help.
            let targets: Vec<keybridge_relstore::TableId> = tops[tops.len() * 3 / 4]
                .bindings
                .iter()
                .map(|a| a.table)
                .collect();
            spaces.push(explorer.space_size(&query) as f64);
            let Some(p) = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
                .run_with_target(&targets)
            else {
                continue;
            };
            let Some(o) =
                FreeQSession::new(Some(&fixture.ontology), tops, FreeQSessionConfig::default())
                    .run_with_target(&targets)
            else {
                continue;
            };
            plain.push(p.steps as f64);
            onto.push(o.steps as f64);
        }
        rows.push(vec![
            n_keywords.to_string(),
            plain.len().to_string(),
            format!("{:.0}", mean(&spaces)),
            format!("{:.1}", mean(&plain)),
            format!("{:.1}", mean(&onto)),
            format!("{:.1}x", mean(&plain) / mean(&onto).max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 5.4 interaction cost over Freebase-scale data",
        &[
            "#keywords",
            "queries",
            "avg space",
            "plain cost",
            "ontology cost",
            "speedup",
        ],
        &rows,
    );
}
