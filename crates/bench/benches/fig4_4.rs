//! Fig. 4.4 — Relevance vs novelty as λ sweeps from 0 to 1 (Eq. 4.4).
//!
//! For each λ, the diversified top-10 is scored on mean relevance (graded
//! assessments) and mean novelty (1 − average pairwise Jaccard similarity of
//! the selected interpretations). The paper's finding: λ trades the two off
//! smoothly; λ ≈ 0.1 buys large novelty for a small relevance sacrifice.

use keybridge_bench::{ch4_query_set, imdb_fixture, lyrics_fixture, mean, print_table, Fixture};
use keybridge_core::{ProbabilityConfig, TemplatePrior};
use keybridge_divq::{diversify, jaccard, DivItem, DiversifyConfig};

fn run(fixture: &Fixture) {
    let divq_prob = ProbabilityConfig {
        unmapped_prob: 1e-4, // partials visible in the pool (§4.4.2)
        ..Default::default()
    };
    let interp = fixture.interpreter(divq_prob, TemplatePrior::Uniform);
    let (sc, mc) = ch4_query_set(fixture, &interp, 25);
    let all: Vec<_> = sc.into_iter().chain(mc).collect();

    let mut rows = Vec::new();
    for step in 0..=10 {
        let lambda = step as f64 / 10.0;
        let mut rels = Vec::new();
        let mut novelties = Vec::new();
        for d in &all {
            let items: Vec<DivItem> = d
                .probs
                .iter()
                .zip(&d.atoms)
                .map(|(p, a)| DivItem {
                    relevance: *p,
                    atoms: a.clone(),
                })
                .collect();
            let order = diversify(&items, DiversifyConfig { lambda, k: 10 });
            if order.len() < 2 {
                continue;
            }
            let sel_rel: Vec<f64> = order.iter().map(|&i| d.relevance[i]).collect();
            rels.push(mean(&sel_rel));
            let mut sims = Vec::new();
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    sims.push(jaccard(&d.atoms[order[i]], &d.atoms[order[j]]));
                }
            }
            novelties.push(1.0 - mean(&sims));
        }
        rows.push(vec![
            format!("{lambda:.1}"),
            format!("{:.3}", mean(&rels)),
            format!("{:.3}", mean(&novelties)),
        ]);
    }
    print_table(
        &format!("Fig. 4.4 ({}) relevance vs novelty across λ", fixture.name),
        &["λ", "avg relevance@10", "avg novelty@10"],
        &rows,
    );
}

fn main() {
    run(&imdb_fixture(21));
    run(&lyrics_fixture(22));
}
