//! Serving-layer throughput: replay a seeded IMDB query log through the
//! concurrent `SearchService` at 1/2/4/8 workers and report wall-clock per
//! replay (whole-log latency; QPS = queries / time). Complements the
//! `smoke --serve` workload driver, which additionally records latency
//! percentiles into `BENCH_baseline.json`.
//!
//! Run with: `cargo bench -p keybridge-bench --bench serve_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use keybridge_bench::replay_serve;
use keybridge_core::{InterpreterConfig, SearchSnapshot};
use keybridge_datagen::{ImdbConfig, ImdbDataset, Workload, WorkloadConfig};
use std::sync::Arc;

fn serve_throughput(c: &mut Criterion) {
    let data = ImdbDataset::generate(ImdbConfig {
        seed: 1,
        actors: 400,
        directors: 100,
        movies: 500,
        companies: 50,
        avg_cast: 3,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 7,
            n_queries: 48,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = workload
        .queries
        .iter()
        .map(|q| q.keywords.clone())
        .collect();
    let snapshot = Arc::new(
        SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 100_000)
            .expect("medium schema"),
    );
    for workers in [1usize, 2, 4, 8] {
        c.bench_function(&format!("serve_replay_{workers}w_48q"), |b| {
            b.iter(|| {
                let run = replay_serve(&snapshot, &queries, workers, 5);
                assert_eq!(run.queries, queries.len());
                run.qps
            })
        });
    }
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
