//! Table 5.3 — Ontologies of different size.
//!
//! The ontology layer comes in different granularities: the flat two-level
//! domain ontology and grouped three-level variants with progressively
//! coarser top layers. Columns: concepts, depth, average fan-out, covered
//! tables — plus the interaction cost a 2-keyword session incurs under each,
//! showing the granularity/efficiency trade-off the paper discusses.

use keybridge_bench::{freebase_fixture, mean, print_table};
use keybridge_core::KeywordQuery;
use keybridge_freeq::{
    FreeQSession, FreeQSessionConfig, LazyExplorer, SchemaOntology, TraversalConfig,
};
use keybridge_relstore::TableId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fixture = freebase_fixture(60, 30, 20_000, 43);
    let domains: Vec<(String, Vec<TableId>)> = fixture
        .fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let variants: Vec<(&str, SchemaOntology)> = vec![
        ("flat (domains)", SchemaOntology::from_domains(&domains)),
        ("grouped x3", SchemaOntology::with_groups(&domains, 3)),
        ("grouped x10", SchemaOntology::with_groups(&domains, 10)),
        ("grouped x20", SchemaOntology::with_groups(&domains, 20)),
    ];

    // A fixed query set reused across variants.
    let mut rng = StdRng::seed_from_u64(44);
    let explorer = LazyExplorer::new(
        &fixture.fb.db,
        &fixture.index,
        TraversalConfig {
            top_n: 400,
            ..Default::default()
        },
    );
    let mut sessions = Vec::new();
    for _ in 0..8 {
        if let Some((keywords, _)) = fixture.sample_query(2, &mut rng) {
            let query = KeywordQuery::from_terms(keywords);
            let tops = explorer.top_interpretations(&query);
            if tops.len() >= 10 {
                let targets: Vec<TableId> = tops[tops.len() * 3 / 4]
                    .bindings
                    .iter()
                    .map(|a| a.table)
                    .collect();
                sessions.push((tops, targets));
            }
        }
    }

    let mut rows = Vec::new();
    for (name, ontology) in &variants {
        let mut costs = Vec::new();
        for (tops, targets) in &sessions {
            if let Some(out) =
                FreeQSession::new(Some(ontology), tops.clone(), FreeQSessionConfig::default())
                    .run_with_target(targets)
            {
                costs.push(out.steps as f64);
            }
        }
        rows.push(vec![
            name.to_string(),
            ontology.len().to_string(),
            ontology.max_depth().to_string(),
            format!("{:.1}", ontology.avg_fanout()),
            ontology.table_count().to_string(),
            format!("{:.1}", mean(&costs)),
        ]);
    }
    print_table(
        "Table 5.3 ontologies of different size (1,800 tables)",
        &[
            "ontology",
            "concepts",
            "depth",
            "avg fanout",
            "tables",
            "session cost",
        ],
        &rows,
    );
}
