//! Smoke benchmark and CI perf gate: candidate-generation throughput of the
//! exhaustive pipeline vs. the best-first top-k generator, executor
//! throughput of the batched hash-join engine vs. the naive oracle, the
//! end-to-end `answers_top_k` path, and (with `--serve`) the concurrent
//! `SearchService` replaying a seeded query log at 1/2/4/8 workers with QPS
//! and p50/p95/p99 latency.
//!
//! With `--scale`, a storage-footprint tier regenerates the profile's IMDB
//! fixture at scale factors 1/10/50 (plus x100 on the full profile) and
//! records rows, build time, snapshot bytes (interned/delta-coded vs. the
//! naive v1 representation), bytes/row, approximate resident heap bytes, the
//! OS-reported resident set size (Linux), and single-worker QPS per scale.
//!
//! ```text
//! # CI: quick profile, serve replay, scale tier, regression gate + artifact
//! cargo run --release -p keybridge-bench --bin smoke -- \
//!     --smoke --serve --scale --check BENCH_baseline.json --out BENCH_current.json
//! # refresh the committed baseline (same profile CI checks against!)
//! cargo run --release -p keybridge-bench --bin smoke -- \
//!     --smoke --serve --scale --out BENCH_baseline.json
//! # full profile, local trend spotting
//! cargo run --release -p keybridge-bench --bin smoke -- --serve --scale
//! ```
//!
//! Counts (spaces, materializations, prunes) are deterministic per seed and
//! gated strictly; wall-clock numbers depend on the machine and are gated
//! with the 1.5x slack of `keybridge_bench::check_regression`.

use keybridge_bench::{
    check_regression, openloop_schedule, replay_diversified, replay_serve, run_open_loop,
    sweep_capacity, CheckConfig, DivServeRun, IngestRun, MixWeights, OpenLoopConfig, OpenLoopRun,
    RecoveryRun, ServeRun, SloConfig, SweepConfig, SweepOutcome,
};
use keybridge_core::{
    execute_interpretation_cached, DiversifyOptions, DurableOptions, ExecCache, Interpreter,
    InterpreterConfig, KeywordQuery, SearchSnapshot, ServeRequests, ServiceStats, ShardedService,
    TemplateCatalog,
};
use keybridge_datagen::{
    holdout_plan, sharded_holdout_plan, ImdbConfig, ImdbDataset, IngestConfig, MixedWorkload,
    Workload, WorkloadConfig,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{ExecOptions, ExecStats, ExecStrategy};
use std::sync::Arc;
use std::time::Instant;

/// Workload sizing: `--smoke` selects `quick` (a genuinely reduced fixture
/// and fewer timing repetitions) so the CI job stays fast as workloads
/// grow; the default `full` profile is for local measurement. Snapshots
/// record the profile and the checker refuses cross-profile comparisons.
struct Profile {
    name: &'static str,
    fixture: &'static str,
    imdb: ImdbConfig,
    /// Timed repetitions per wall-clock sample (median taken).
    runs: usize,
    /// Queries replayed through the service per worker count.
    serve_queries: usize,
    /// Per-row holdout probability of the live-ingestion phase.
    ingest_holdout: f64,
    /// Insert batches (= epoch swaps) of the live-ingestion phase.
    ingest_batches: usize,
    /// Operations per rung of the open-loop capacity sweep (fixed across
    /// rungs, so the per-mode schedule counts stay rate-independent).
    sweep_ops: usize,
    /// Offered rate of the sweep's first rung.
    sweep_start_rps: f64,
    /// Insert batches available to the sweep schedule's ingest slots.
    sweep_batches: usize,
    /// Scale factors of the `--scale` storage-footprint tier. The full
    /// profile adds an x100 rung for the README footprint table; CI's quick
    /// profile stops at x50 to keep the job fast.
    scales: &'static [u32],
}

impl Profile {
    fn full() -> Self {
        Profile {
            name: "full",
            fixture: "imdb-default",
            imdb: ImdbConfig::default(),
            runs: 5,
            serve_queries: 108,
            ingest_holdout: 0.15,
            ingest_batches: 10,
            sweep_ops: 480,
            sweep_start_rps: 200.0,
            sweep_batches: 6,
            scales: &[1, 10, 50, 100],
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            fixture: "imdb-quick",
            imdb: ImdbConfig {
                seed: 1,
                actors: 400,
                directors: 100,
                movies: 500,
                companies: 50,
                avg_cast: 3,
                scale: 1.0,
            },
            runs: 3,
            serve_queries: 48,
            ingest_holdout: 0.15,
            ingest_batches: 6,
            sweep_ops: 320,
            sweep_start_rps: 200.0,
            sweep_batches: 4,
            scales: &[1, 10, 50],
        }
    }
}

/// Worker counts of the serve replay (the 1/2/4/8 ladder of the issue).
const SERVE_WORKERS: &[usize] = &[1, 2, 4, 8];

/// Queries replayed (single worker) per scale for the `qps_scaleN` figures.
const SCALE_QUERIES: usize = 24;

/// One rung of the `--scale` tier: the profile's IMDB fixture regenerated at
/// `scale`, with its storage footprint measured on the snapshot codecs (a
/// pure function of content, machine-independent) and on the deterministic
/// heap model of `Database::approx_heap_bytes`.
struct ScaleRun {
    scale: u32,
    rows: usize,
    build_ms: f64,
    /// Interned v2 store snapshot vs. what the v1 per-cell-String codec
    /// would have written for identical content.
    store_bytes: u64,
    store_bytes_naive: u64,
    /// Delta-varint v2 index snapshot vs. the v1 fixed-width postings.
    index_bytes: u64,
    index_bytes_naive: u64,
    heap_bytes: u64,
    heap_bytes_naive: u64,
    /// OS-reported resident set size right after the rung's structures are
    /// built — the honesty cross-check of the deterministic heap model.
    /// `None` off Linux; always informational (allocators rarely return
    /// pages, so earlier rungs inflate later readings).
    rss_bytes: Option<u64>,
    qps: f64,
}

impl ScaleRun {
    fn bytes_per_row(&self) -> f64 {
        (self.store_bytes + self.index_bytes) as f64 / self.rows.max(1) as f64
    }

    fn bytes_per_row_naive(&self) -> f64 {
        (self.store_bytes_naive + self.index_bytes_naive) as f64 / self.rows.max(1) as f64
    }
}

/// Shard count of the scatter-gather phase.
const SHARDS: usize = 4;

/// Resident set size of this process from `/proc/self/statm` (resident
/// pages × the 4 KiB page size every supported Linux target uses). `None`
/// when the proc file is unavailable (non-Linux hosts).
#[cfg(target_os = "linux")]
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * 4096)
}

#[cfg(not(target_os = "linux"))]
fn rss_bytes() -> Option<u64> {
    None
}

/// Median wall-clock seconds of `f` over `runs` runs (after one warm-up).
fn time<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut sweep_out_path: Option<String> = None;
    let mut profile = Profile::full();
    let mut serve = false;
    let mut scale = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => profile = Profile::quick(),
            "--serve" => serve = true,
            "--scale" => scale = true,
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 1;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 1;
            }
            "--sweep-out" => {
                sweep_out_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: smoke [--smoke] [--serve] [--scale] [--out FILE] \
                     [--check BASELINE] [--sweep-out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("building IMDB fixture ({} profile)…", profile.name);
    let t_gen = Instant::now();
    let data = ImdbDataset::generate(profile.imdb).expect("generation succeeds");
    let startup_build_ms = t_gen.elapsed().as_secs_f64() * 1e3;
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
    println!(
        "  {} templates, {} index terms",
        catalog.len(),
        index.term_count()
    );

    // The acceptance scenario: a 4-keyword query with partials enabled.
    let query4 = KeywordQuery::from_terms(vec![
        "hanks".into(),
        "terminal".into(),
        "actor".into(),
        "movie".into(),
    ]);
    let k = 10;
    let runs = profile.runs;

    let exhaustive_len = interpreter.ranked_with_partials(&query4).len();
    let (topk, stats) = interpreter.top_k_with_stats(&query4, k, true);
    let t_exhaustive = time(runs, || interpreter.ranked_with_partials(&query4));
    let t_topk = time(runs, || interpreter.top_k(&query4, k));

    // Throughput of complete-only generation over a 2-keyword query — the
    // "candidate-generation throughput" headline number.
    let query2 = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
    let t_rank2 = time(2 * runs, || interpreter.ranked_interpretations(&query2));
    let space2 = interpreter.ranked_interpretations(&query2).len();
    let t_top2 = time(2 * runs, || interpreter.top_k_complete(&query2, k));

    let speedup = t_exhaustive / t_topk.max(1e-12);
    let mat_ratio = exhaustive_len as f64 / (stats.materialized.max(1)) as f64;
    println!("\n== candidate generation (4 keywords, partials) ==");
    println!(
        "  exhaustive : {exhaustive_len} interpretations in {:.2} ms",
        t_exhaustive * 1e3
    );
    println!(
        "  best-first : top {} of that space in {:.2} ms ({} materialized, {} expanded, {} pruned)",
        topk.len(),
        t_topk * 1e3,
        stats.materialized,
        stats.expanded,
        stats.pruned,
    );
    println!("  speedup    : {speedup:.1}x wall-clock, {mat_ratio:.1}x fewer materializations");
    println!("\n== complete-only generation (2 keywords) ==");
    println!(
        "  exhaustive : {space2} interpretations in {:.2} ms ({:.0} interpretations/s)",
        t_rank2 * 1e3,
        space2 as f64 / t_rank2.max(1e-12),
    );
    println!("  best-first : top {k} in {:.2} ms", t_top2 * 1e3);

    if stats.materialized * 5 > exhaustive_len && speedup < 2.0 {
        eprintln!(
            "SMOKE FAIL: neither 5x fewer materializations ({mat_ratio:.1}x) \
             nor 2x wall-clock ({speedup:.1}x)"
        );
        std::process::exit(1);
    }

    // == execution: batched hash joins vs. the naive oracle, and the
    //    end-to-end streaming answers path, on the 4-keyword query. ==
    let exec_opts = |strategy| ExecOptions {
        limit: 10_000,
        strategy,
        ..Default::default()
    };
    let sum_stats = |strategy| -> ExecStats {
        // One cache per invocation: the top-k executions share its batch
        // arena (the allocation profile `batch_allocs` gates — the arena
        // stops growing after the first queries warm it), while fresh
        // invocations stay cold so every counter is replay-deterministic.
        let mut cache = ExecCache::new();
        let mut total = ExecStats::default();
        for s in &topk {
            if let Ok(r) = execute_interpretation_cached(
                &data.db,
                &index,
                &catalog,
                &s.interpretation,
                exec_opts(strategy),
                &mut cache,
            ) {
                total.absorb(&r.stats);
            }
        }
        total
    };
    let hj = sum_stats(ExecStrategy::HashJoin);
    let nv = sum_stats(ExecStrategy::Naive);
    let t_exec_hj = time(runs, || sum_stats(ExecStrategy::HashJoin));
    let t_exec_nv = time(runs, || sum_stats(ExecStrategy::Naive));
    let (answers, astats) = interpreter.answers_top_k_with_stats(&query4, k);
    let t_answers = time(runs, || interpreter.answers_top_k(&query4, k));
    println!(
        "\n== execution (top {} interpretations of the 4-keyword query) ==",
        topk.len()
    );
    println!(
        "  naive      : {} intermediate bindings, {} probes in {:.2} ms",
        nv.intermediate_bindings,
        nv.probes,
        t_exec_nv * 1e3
    );
    println!(
        "  hash join  : {} intermediate bindings, {} probes, {} batches, \
         semi-join kept {}/{} rows ({:.0}% pruned) in {:.2} ms",
        hj.intermediate_bindings,
        hj.probes,
        hj.batches,
        hj.semijoin_rows_out,
        hj.semijoin_rows_in,
        hj.semijoin_reduction() * 100.0,
        t_exec_hj * 1e3
    );
    println!(
        "  answers    : top {} end-to-end in {:.2} ms ({} generated, {} executed, \
         {} intermediates)",
        answers.len(),
        t_answers * 1e3,
        astats.generated,
        astats.executed,
        astats.exec.intermediate_bindings,
    );
    println!(
        "  arena      : {} batch columns served from {} arena growths \
         (peak {:.1} KiB resident)",
        hj.batch_cols,
        hj.batch_allocs,
        hj.arena_bytes_peak as f64 / 1024.0,
    );
    if hj.intermediate_bindings >= nv.intermediate_bindings {
        eprintln!(
            "SMOKE FAIL: hash join did not materialize strictly fewer intermediate \
             bindings ({} vs {})",
            hj.intermediate_bindings, nv.intermediate_bindings
        );
        std::process::exit(1);
    }
    // The arena mandate: replaying the top-k interpretations through one
    // cache must grow the arena at least 10x less often than the pre-arena
    // executor allocated batch columns.
    if hj.batch_allocs * 10 > hj.batch_cols {
        eprintln!(
            "SMOKE FAIL: arena grew {} times for {} batch columns — the \
             reuse path is not absorbing per-batch allocations (need >= 10x fewer)",
            hj.batch_allocs, hj.batch_cols
        );
        std::process::exit(1);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // == scale: the storage-footprint tier. Regenerate the profile's IMDB
    //    fixture at scale 1/10/50, measure the interned/delta-coded snapshot
    //    codecs against the naive v1 representation of identical content,
    //    and replay a short seeded log for a per-scale QPS figure. ==
    let mut scale_runs: Vec<ScaleRun> = Vec::new();
    let mut scale_gate_failure: Option<String> = None;
    if scale {
        println!(
            "\n== scale (IMDB fixture at {}, {} profile) ==",
            profile
                .scales
                .iter()
                .map(|s| format!("x{s}"))
                .collect::<Vec<_>>()
                .join("/"),
            profile.name
        );
        for &s in profile.scales {
            let cfg = ImdbConfig {
                scale: s as f64,
                ..profile.imdb
            };
            let (data, build_ms) = if s == 1 && profile.imdb.scale == 1.0 {
                // The startup fixture *is* the x1 fixture (identical
                // generator config): reuse it instead of paying a redundant
                // regeneration, and record the startup generation's time.
                println!("  x1  : reusing the startup fixture (identical generator config)");
                (data.clone(), startup_build_ms)
            } else {
                let t = Instant::now();
                let d = ImdbDataset::generate(cfg).expect("generation succeeds");
                (d, t.elapsed().as_secs_f64() * 1e3)
            };
            let rows = data.db.total_rows();
            let store_bytes = data
                .db
                .snapshot_bytes()
                .expect("store fits the codec")
                .len() as u64;
            let store_bytes_naive = data.db.naive_snapshot_bytes();
            let heap_bytes = data.db.approx_heap_bytes();
            let heap_bytes_naive = data.db.naive_heap_bytes();
            let index = InvertedIndex::build(&data.db);
            let index_bytes = index.snapshot_bytes().expect("index fits the codec").len() as u64;
            let index_bytes_naive = index.naive_snapshot_bytes();
            // Probe RSS while this rung's store + index are resident,
            // before the serving snapshot adds its own structures.
            let rss = rss_bytes();
            let workload = Workload::imdb(
                &data,
                WorkloadConfig {
                    seed: 7,
                    n_queries: SCALE_QUERIES,
                    mc_fraction: 0.5,
                },
            );
            let queries: Vec<Vec<String>> = workload
                .queries
                .iter()
                .map(|q| q.keywords.clone())
                .collect();
            let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
            let snapshot = Arc::new(SearchSnapshot::new(
                data.db,
                index,
                catalog,
                InterpreterConfig::default(),
            ));
            let mut qps: Vec<f64> = (0..3)
                .map(|_| replay_serve(&snapshot, &queries, 1, 5).qps)
                .collect();
            qps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let run = ScaleRun {
                scale: s,
                rows,
                build_ms,
                store_bytes,
                store_bytes_naive,
                index_bytes,
                index_bytes_naive,
                heap_bytes,
                heap_bytes_naive,
                rss_bytes: rss,
                qps: qps[qps.len() / 2],
            };
            println!(
                "  x{:<3}: {:>8} rows in {:>8.1} ms   {:>6.1} B/row on disk \
                 (naive {:>6.1})   heap {:>6.2} MiB (naive {:>6.2})   rss {}   {:>7.1} qps",
                run.scale,
                run.rows,
                run.build_ms,
                run.bytes_per_row(),
                run.bytes_per_row_naive(),
                run.heap_bytes as f64 / (1024.0 * 1024.0),
                run.heap_bytes_naive as f64 / (1024.0 * 1024.0),
                run.rss_bytes.map_or("n/a".into(), |b| {
                    format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
                }),
                run.qps,
            );
            scale_runs.push(run);
        }
        // The tier's two hard gates (deferred like the serve gate so the
        // snapshot is still written as the CI artifact): the x50 fixture
        // must clear 100k rows, and at x10 the interned + delta-coded
        // snapshot must be at least 25% smaller than the naive codec.
        if let Some(r50) = scale_runs.iter().find(|r| r.scale == 50) {
            if r50.rows < 100_000 {
                scale_gate_failure = Some(format!(
                    "scale-50 fixture built only {} rows (need >= 100000)",
                    r50.rows
                ));
            }
        }
        if let Some(r10) = scale_runs.iter().find(|r| r.scale == 10) {
            let packed = r10.store_bytes + r10.index_bytes;
            let naive = r10.store_bytes_naive + r10.index_bytes_naive;
            if packed * 4 > naive * 3 && scale_gate_failure.is_none() {
                scale_gate_failure = Some(format!(
                    "scale-10 snapshot is {packed} bytes vs {naive} naive — \
                     less than the required 25% saving"
                ));
            }
        }
    }

    // == serve: query-log replay through the concurrent SearchService. ==
    let mut serve_runs: Vec<ServeRun> = Vec::new();
    let mut div_run: Option<DivServeRun> = None;
    let mut ingest_run: Option<IngestRun> = None;
    let mut recovery_run: Option<RecoveryRun> = None;
    let mut sweep_outcome: Option<SweepOutcome> = None;
    let mut sharded_run: Option<(OpenLoopRun, ServiceStats)> = None;
    let mut sweep_workers = 0usize;
    let mut serve_gate_failure: Option<String> = None;
    if serve {
        let workload = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 7,
                n_queries: profile.serve_queries,
                mc_fraction: 0.5,
            },
        );
        let queries: Vec<Vec<String>> = workload
            .queries
            .iter()
            .map(|q| q.keywords.clone())
            .collect();
        // The live-ingestion phase re-serves the same fixture from a
        // preload + insert batches; plan it before the serve snapshot takes
        // ownership of the database.
        let ingest_plan = holdout_plan(
            &data.db,
            IngestConfig {
                seed: 11,
                holdout: profile.ingest_holdout,
                batches: profile.ingest_batches,
            },
        );
        let ingest_catalog = catalog.clone();
        // The earlier sections are done with their borrows; the snapshot
        // takes ownership of the served structures.
        let snapshot = Arc::new(SearchSnapshot::new(
            data.db,
            index,
            catalog,
            InterpreterConfig::default(),
        ));
        println!(
            "\n== serve ({} queries from the seeded IMDB log, {cores} cores) ==",
            queries.len()
        );
        for &w in SERVE_WORKERS {
            // Median of three cold replays per metric: tail percentiles
            // under oversubscription jitter far too much for a single
            // sample to be comparable across runs.
            let samples: Vec<ServeRun> = (0..3)
                .map(|_| replay_serve(&snapshot, &queries, w, 5))
                .collect();
            let med = |f: fn(&ServeRun) -> f64| -> f64 {
                let mut v: Vec<f64> = samples.iter().map(f).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            };
            let run = ServeRun {
                workers: w,
                queries: samples[0].queries,
                qps: med(|r| r.qps),
                p50_ms: med(|r| r.p50_ms),
                p95_ms: med(|r| r.p95_ms),
                p99_ms: med(|r| r.p99_ms),
            };
            println!(
                "  {w} worker{s}: {:8.1} qps   p50 {:6.3} ms   p95 {:6.3} ms   p99 {:6.3} ms",
                run.qps,
                run.p50_ms,
                run.p95_ms,
                run.p99_ms,
                s = if w == 1 { " " } else { "s" },
            );
            serve_runs.push(run);
        }
        let qps1 = serve_runs[0].qps;
        let qps4 = serve_runs
            .iter()
            .find(|r| r.workers == 4)
            .map(|r| r.qps)
            .unwrap_or(qps1);
        let scaling = qps4 / qps1.max(1e-12);
        println!("  scaling    : {scaling:.2}x QPS at 4 workers vs 1");
        // The hard gate trips only on outright concurrency breakage (an
        // accidental global lock serializes the replay to ~1x); between
        // 1.3x and the 2x target it warns, because the sub-millisecond
        // closed-loop replay has never been tuned on multi-core CI
        // hardware and queue-pop overhead eats into ideal scaling.
        if cores >= 4 && scaling < 1.3 {
            // Defer the exit: the snapshot (and its per-worker QPS/latency
            // numbers — exactly what debugging this failure needs) must
            // still be written and uploadable as the CI artifact.
            serve_gate_failure = Some(format!(
                "{cores} cores available but 4-worker replay reached only \
                 {scaling:.2}x the 1-worker QPS — concurrency is broken \
                 (a healthy pool reaches ~2x; hard floor is 1.3x)"
            ));
        } else if cores >= 4 && scaling < 2.0 {
            println!(
                "  warning: scaling {scaling:.2}x is below the 2x target \
                 on {cores} cores (hard floor 1.3x)"
            );
        } else if cores < 4 {
            println!(
                "  note: only {cores} core(s) visible — parallel scaling cannot \
                 manifest here; QPS/latency recorded, scaling gate skipped"
            );
        }

        // == diversified: the same log replayed as Alg. 4.1 requests
        //    through the pipeline's diversified mode. Pool/selection sizes
        //    are deterministic (pure functions of data + log, warm or
        //    cold); QPS is the price of serving diversified lists. ==
        let div_samples: Vec<DivServeRun> = (0..3)
            .map(|_| replay_diversified(&snapshot, &queries, 1, DiversifyOptions::default()))
            .collect();
        for s in &div_samples[1..] {
            assert_eq!(
                (s.pool_items, s.selected),
                (div_samples[0].pool_items, div_samples[0].selected),
                "diversification counters must be replay-deterministic"
            );
        }
        let mut div_qps: Vec<f64> = div_samples.iter().map(|r| r.qps).collect();
        div_qps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let run = DivServeRun {
            queries: div_samples[0].queries,
            qps: div_qps[div_qps.len() / 2],
            pool_items: div_samples[0].pool_items,
            selected: div_samples[0].selected,
        };
        println!(
            "\n== diversified ({} queries, Alg. 4.1 top-10, pool 25) ==\n  \
             1 worker : {:8.1} qps   {} pool items, {} selected across the log",
            run.queries, run.qps, run.pool_items, run.selected
        );
        div_run = Some(run);

        // == ingest: live-write throughput + post-update serving rate over
        //    the epoch-swap path, driven by the seeded mixed read/write
        //    stream (single worker, sequential: deterministic counters). ==
        let mixed = MixedWorkload::interleave(ingest_plan, &queries, 13);
        let (mixed_queries, mixed_inserts) = mixed.counts();
        let run = keybridge_bench::replay_ingest(&mixed.initial, &mixed.ops, ingest_catalog, 5);
        println!(
            "\n== ingest ({} rows held out of the fixture, {} batches mixed into \
             {} queries) ==",
            run.rows, mixed_inserts, mixed_queries
        );
        println!(
            "  ingest     : {:8.0} rows/s ({} epoch swaps, {} stale cache entries retired)",
            run.rows_per_s, run.epoch_swaps, run.stale_evictions
        );
        println!(
            "  post-update: {:8.1} qps over the {}-query log (cold epoch-{} caches)",
            run.post_qps,
            queries.len(),
            run.epoch_swaps
        );
        if run.epoch_swaps != run.batches && serve_gate_failure.is_none() {
            serve_gate_failure = Some(format!(
                "ingest published {} epochs for {} batches — the swap path is broken",
                run.epoch_swaps, run.batches
            ));
        }
        ingest_run = Some(run);

        // == recovery: the durability path over the same insert schedule.
        //    WAL every batch, checkpoint once mid-stream, drop the service
        //    (the simulated crash), reopen and time the recovery. Counters
        //    (records appended, checkpoints, tail batches replayed) are
        //    deterministic; recovery_ms is wall-clock. ==
        let dir = std::env::temp_dir().join(format!("keybridge-smoke-{}", std::process::id()));
        let opts = DurableOptions {
            max_joins: 4,
            max_templates: 100_000,
            ..DurableOptions::default()
        };
        let run = keybridge_bench::replay_recovery(&mixed.initial, &mixed.ops, &opts, &dir);
        println!("\n== recovery (WAL every batch, one mid-stream checkpoint, kill, reopen) ==");
        println!(
            "  durability : {} WAL records ({} bytes framed), {} checkpoint",
            run.wal_batches, run.wal_bytes, run.checkpoints
        );
        println!(
            "  reopen     : {} batches replayed from the log tail in {:.2} ms",
            run.replayed_batches, run.recovery_ms
        );
        recovery_run = Some(run);

        // == open-loop sweep: the capacity knee under a fixed-rate mixed
        //    schedule. Unlike the closed-loop replays above, arrival
        //    instants are fixed before each rung and latency is charged
        //    from the *scheduled* arrival, so queueing behind a slow
        //    service counts (no coordinated omission). The ladder climbs
        //    1.25x per rung until p95 or the failure/timeout rate breaks
        //    the SLO; the knee is the last rate that held it. ==
        let sweep_plan = holdout_plan(
            &mixed.initial,
            IngestConfig {
                seed: 19,
                holdout: 0.05,
                batches: profile.sweep_batches,
            },
        );
        let ol_snapshot = Arc::new(SearchSnapshot::new(
            sweep_plan.initial.clone(),
            InvertedIndex::build(&sweep_plan.initial),
            snapshot.catalog.clone(),
            InterpreterConfig::default(),
        ));
        sweep_workers = cores.clamp(1, 8);
        let sweep_cfg = SweepConfig {
            seed: 23,
            n_ops: profile.sweep_ops,
            start_rps: profile.sweep_start_rps,
            growth: 1.25,
            max_rungs: 14,
            mix: MixWeights::default(),
            slo: SloConfig {
                p95_ms: 50.0,
                max_failure_rate: 0.02,
            },
            open: OpenLoopConfig {
                workers: sweep_workers,
                sync_clients: 2,
                timeout_ms: 500.0,
                ..Default::default()
            },
        };
        let outcome = sweep_capacity(&ol_snapshot, &queries, &sweep_plan.batches, &sweep_cfg);
        println!(
            "\n== open-loop sweep ({} ops/rung, {}/{}/{}/{} search/div/session/ingest, \
             SLO p95 <= {} ms, failures <= {:.0}%, {} workers) ==",
            profile.sweep_ops,
            outcome.counts.search,
            outcome.counts.diversified,
            outcome.counts.session,
            outcome.counts.ingest,
            sweep_cfg.slo.p95_ms,
            sweep_cfg.slo.max_failure_rate * 100.0,
            sweep_workers,
        );
        for r in &outcome.rungs {
            println!(
                "  {:8.1} rps offered: p50 {:7.3} ms  p95 {:7.3} ms  p99 {:7.3} ms  \
                 achieved {:7.1} rps  {} failed  {} timed out  [{}]",
                r.target_rps,
                r.run.p50_ms,
                r.run.p95_ms,
                r.run.p99_ms,
                r.run.achieved_rps,
                r.run.failures,
                r.run.timeouts,
                if r.passed { "ok" } else { "SLO broken" },
            );
        }
        if outcome.capacity_rps > 0.0 {
            println!(
                "  capacity   : {:.1} rps (p95 {:.3} ms at the knee)",
                outcome.capacity_rps, outcome.p95_at_capacity_ms
            );
        } else {
            println!(
                "  capacity   : below the first rung ({:.1} rps) — p95 {:.3} ms there",
                profile.sweep_start_rps, outcome.p95_at_capacity_ms
            );
        }
        if let Some(path) = &sweep_out_path {
            let curve = render_sweep_curve(&profile, cores, &sweep_cfg, &outcome);
            std::fs::write(path, curve).expect("write sweep curve");
            println!("  sweep curve written to {path}");
        }
        sweep_outcome = Some(outcome);

        // == sharded: the same mixed open-loop schedule against the K-shard
        //    scatter-gather router behind the identical ServeRequests seam.
        //    The shard directory is planned over the *full* pre-holdout
        //    corpus, so replayed ingest lands every held-out row exactly
        //    where a cold partitioning would, and the routing counters
        //    (per-shard epoch advances, distinct shards touched) are pure
        //    functions of fixture + plan + directory — gated strictly. ==
        let sh = sharded_holdout_plan(
            &mixed.initial,
            IngestConfig {
                seed: 19,
                holdout: 0.05,
                batches: profile.sweep_batches,
            },
            SHARDS,
        );
        let sharded = ShardedService::start_with_assignment(
            Arc::clone(&ol_snapshot),
            sh.assignment,
            sweep_workers,
        );
        let ops = openloop_schedule(
            23,
            profile.sweep_ops,
            profile.sweep_start_rps,
            MixWeights::default(),
            queries.len(),
            sh.plan.batches.len(),
        );
        let run = run_open_loop(&sharded, &queries, &sh.plan.batches, &ops, &sweep_cfg.open);
        // The schedule may not have drawn enough ingest slots for the whole
        // plan; drain the rest so the routing counters always cover it.
        for batch in &sh.plan.batches[run.counts.ingest..] {
            sharded.ingest(batch).expect("planned batch routes cleanly");
        }
        let stats = sharded.service_stats();
        println!(
            "\n== sharded ({SHARDS} shards, {} workers each, {} ops open-loop at {:.0} rps) ==",
            sweep_workers, profile.sweep_ops, profile.sweep_start_rps
        );
        println!(
            "  latency    : p50 {:7.3} ms  p95 {:7.3} ms  achieved {:7.1} rps  \
             {} failed  {} timed out",
            run.p50_ms, run.p95_ms, run.achieved_rps, run.failures, run.timeouts
        );
        println!(
            "  routing    : {} batches → {} shard epoch advances across {} of {SHARDS} \
             shards ({} global epochs, {} stale cache entries retired)",
            sh.plan.batches.len(),
            stats.shard_epoch_swaps,
            stats.shards_touched,
            stats.epoch,
            stats.stale_evictions,
        );
        println!(
            "  merge      : {} gathered rows left untouched by the bounded top-k merge",
            stats.shard_rows_skipped
        );
        // The bounded-merge mandate: over a whole open-loop phase some
        // query must produce more rows across the shards than the global
        // limit, so a coordinator that still drains every shard reads 0.
        if stats.shard_rows_skipped == 0 && serve_gate_failure.is_none() {
            serve_gate_failure = Some(
                "bounded scatter-gather merge never skipped a gathered row — \
                 the coordinator is draining every shard"
                    .into(),
            );
        }
        if stats.epoch != sh.plan.batches.len() as u64 && serve_gate_failure.is_none() {
            serve_gate_failure = Some(format!(
                "sharded service published {} epochs for {} batches — the \
                 per-shard swap path is broken",
                stats.epoch,
                sh.plan.batches.len()
            ));
        }
        sharded_run = Some((run, stats));
    }

    let gate_failure = serve_gate_failure.or(scale_gate_failure);
    match &gate_failure {
        None => println!("\nSMOKE OK"),
        Some(why) => eprintln!("\nSMOKE FAIL (exit deferred until snapshot written): {why}"),
    }

    let json = render_json(
        &profile,
        k,
        exhaustive_len,
        &stats,
        space2,
        &nv,
        &hj,
        astats.generated,
        astats.executed,
        answers.len(),
        &[
            ("exhaustive_partials_4kw_ms", t_exhaustive * 1e3),
            ("top10_partials_4kw_ms", t_topk * 1e3),
            ("exhaustive_complete_2kw_ms", t_rank2 * 1e3),
            ("top10_complete_2kw_ms", t_top2 * 1e3),
            ("exec_naive_top10_4kw_ms", t_exec_nv * 1e3),
            ("exec_hashjoin_top10_4kw_ms", t_exec_hj * 1e3),
            ("answers_top10_4kw_ms", t_answers * 1e3),
        ],
        cores,
        &serve_runs,
        div_run.as_ref(),
        ingest_run.as_ref(),
        recovery_run.as_ref(),
        sweep_outcome.as_ref(),
        sharded_run.as_ref(),
        sweep_workers,
        &scale_runs,
    );

    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write snapshot");
        println!("snapshot written to {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_regression(&baseline, &json, CheckConfig::default()) {
            Ok(violations) if violations.is_empty() => {
                println!("CHECK OK: no regression vs {path}");
            }
            Ok(violations) => {
                eprintln!("CHECK FAIL: {} regression(s) vs {path}:", violations.len());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("CHECK FAIL: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(why) = gate_failure {
        eprintln!("SMOKE FAIL: {why}");
        std::process::exit(1);
    }
}

/// Render the flat-keyed snapshot `check_regression` consumes. Every metric
/// key is unique across the whole document (see
/// `keybridge_bench::parse_baseline`).
#[allow(clippy::too_many_arguments)]
fn render_json(
    profile: &Profile,
    k: usize,
    exhaustive_len: usize,
    gen: &keybridge_core::GenerationStats,
    space2: usize,
    nv: &ExecStats,
    hj: &ExecStats,
    answers_generated: usize,
    answers_executed: usize,
    answers_returned: usize,
    walls: &[(&str, f64)],
    cores: usize,
    serve_runs: &[ServeRun],
    div: Option<&DivServeRun>,
    ingest: Option<&IngestRun>,
    recovery: Option<&RecoveryRun>,
    sweep: Option<&SweepOutcome>,
    sharded: Option<&(OpenLoopRun, ServiceStats)>,
    sweep_workers: usize,
    scale_runs: &[ScaleRun],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"fixture\": \"{}\",\n", profile.fixture));
    s.push_str(&format!("  \"profile\": \"{}\",\n", profile.name));
    s.push_str("  \"query4\": \"hanks terminal actor movie\",\n");
    s.push_str(&format!("  \"k\": {k},\n"));
    s.push_str(&format!("  \"exhaustive_candidates\": {exhaustive_len},\n"));
    s.push_str(&format!(
        "  \"best_first_materialized\": {},\n",
        gen.materialized
    ));
    s.push_str(&format!("  \"best_first_expanded\": {},\n", gen.expanded));
    s.push_str(&format!("  \"best_first_pruned\": {},\n", gen.pruned));
    s.push_str(&format!(
        "  \"nonempty_probes\": {},\n",
        gen.nonempty_probes
    ));
    s.push_str(&format!(
        "  \"nonempty_cache_hits\": {},\n",
        gen.nonempty_cache_hits
    ));
    s.push_str(&format!("  \"complete_space_2kw\": {space2},\n"));
    s.push_str("  \"executor\": {\n");
    s.push_str(&format!(
        "    \"naive_intermediate_bindings\": {},\n",
        nv.intermediate_bindings
    ));
    s.push_str(&format!(
        "    \"hashjoin_intermediate_bindings\": {},\n",
        hj.intermediate_bindings
    ));
    s.push_str(&format!("    \"naive_probes\": {},\n", nv.probes));
    s.push_str(&format!("    \"hashjoin_probes\": {},\n", hj.probes));
    s.push_str(&format!("    \"hashjoin_batches\": {},\n", hj.batches));
    s.push_str(&format!(
        "    \"semijoin_rows_in\": {},\n",
        hj.semijoin_rows_in
    ));
    s.push_str(&format!(
        "    \"semijoin_rows_out\": {},\n",
        hj.semijoin_rows_out
    ));
    s.push_str(&format!("    \"batch_cols\": {},\n", hj.batch_cols));
    s.push_str(&format!("    \"batch_allocs\": {},\n", hj.batch_allocs));
    s.push_str(&format!(
        "    \"arena_bytes_peak\": {},\n",
        hj.arena_bytes_peak
    ));
    s.push_str(&format!(
        "    \"answers_generated\": {answers_generated},\n"
    ));
    s.push_str(&format!("    \"answers_executed\": {answers_executed},\n"));
    s.push_str(&format!("    \"answers_returned\": {answers_returned}\n"));
    s.push_str("  },\n");
    s.push_str("  \"wall_clock_ms\": {\n");
    for (i, (key, ms)) in walls.iter().enumerate() {
        let comma = if i + 1 < walls.len() { "," } else { "" };
        s.push_str(&format!("    \"{key}\": {ms:.3}{comma}\n"));
    }
    s.push_str("  }");
    if !serve_runs.is_empty() {
        s.push_str(",\n  \"serve\": {\n");
        s.push_str(&format!("    \"serve_cores\": {cores},\n"));
        s.push_str(&format!(
            "    \"serve_queries\": {},\n",
            serve_runs[0].queries
        ));
        for r in serve_runs {
            let w = r.workers;
            s.push_str(&format!("    \"qps_w{w}\": {:.1},\n", r.qps));
            s.push_str(&format!("    \"p50_ms_w{w}\": {:.3},\n", r.p50_ms));
            s.push_str(&format!("    \"p95_ms_w{w}\": {:.3},\n", r.p95_ms));
            s.push_str(&format!("    \"p99_ms_w{w}\": {:.3},\n", r.p99_ms));
        }
        let qps1 = serve_runs[0].qps.max(1e-12);
        let qps4 = serve_runs
            .iter()
            .find(|r| r.workers == 4)
            .map(|r| r.qps)
            .unwrap_or(qps1);
        s.push_str(&format!("    \"serve_scaling_w4\": {:.3}", qps4 / qps1));
        if let Some(run) = div {
            s.push_str(",\n");
            s.push_str(&format!("    \"qps_diversified\": {:.1},\n", run.qps));
            s.push_str(&format!("    \"div_pool_items\": {},\n", run.pool_items));
            s.push_str(&format!("    \"div_selected\": {}", run.selected));
        }
        if let Some(run) = ingest {
            s.push_str(",\n");
            s.push_str(&format!("    \"ingest_rows\": {},\n", run.rows));
            s.push_str(&format!("    \"ingest_batches\": {},\n", run.batches));
            s.push_str(&format!("    \"epoch_swaps\": {},\n", run.epoch_swaps));
            s.push_str(&format!(
                "    \"stale_evictions\": {},\n",
                run.stale_evictions
            ));
            s.push_str(&format!(
                "    \"ingest_rows_per_s\": {:.1},\n",
                run.rows_per_s
            ));
            s.push_str(&format!("    \"qps_post_ingest\": {:.1}", run.post_qps));
        }
        if let Some(run) = recovery {
            s.push_str(",\n");
            s.push_str(&format!("    \"wal_batches\": {},\n", run.wal_batches));
            s.push_str(&format!("    \"wal_bytes\": {},\n", run.wal_bytes));
            s.push_str(&format!(
                "    \"recovery_checkpoints\": {},\n",
                run.checkpoints
            ));
            s.push_str(&format!(
                "    \"recovery_replayed_batches\": {},\n",
                run.replayed_batches
            ));
            s.push_str(&format!("    \"recovery_ms\": {:.3}", run.recovery_ms));
        }
        if let Some(o) = sweep {
            s.push_str(",\n");
            s.push_str(&format!("    \"openloop_workers\": {sweep_workers},\n"));
            s.push_str(&format!(
                "    \"openloop_search_ops\": {},\n",
                o.counts.search
            ));
            s.push_str(&format!(
                "    \"openloop_diversified_ops\": {},\n",
                o.counts.diversified
            ));
            s.push_str(&format!(
                "    \"openloop_session_ops\": {},\n",
                o.counts.session
            ));
            s.push_str(&format!(
                "    \"openloop_ingest_ops\": {},\n",
                o.counts.ingest
            ));
            s.push_str(&format!("    \"capacity_rps\": {:.1},\n", o.capacity_rps));
            s.push_str(&format!(
                "    \"p95_at_capacity_ms\": {:.3}",
                o.p95_at_capacity_ms
            ));
        }
        if let Some((run, stats)) = sharded {
            s.push_str(",\n");
            s.push_str(&format!("    \"sharded_shards\": {SHARDS},\n"));
            s.push_str(&format!(
                "    \"shard_epoch_swaps\": {},\n",
                stats.shard_epoch_swaps
            ));
            s.push_str(&format!(
                "    \"shards_touched\": {},\n",
                stats.shards_touched
            ));
            s.push_str(&format!(
                "    \"shard_rows_skipped\": {},\n",
                stats.shard_rows_skipped
            ));
            s.push_str(&format!("    \"p95_sharded_ms\": {:.3}", run.p95_ms));
        }
        s.push('\n');
        s.push_str("  }");
    }
    if !scale_runs.is_empty() {
        s.push_str(",\n  \"scale\": {\n");
        s.push_str(&format!("    \"scale_cores\": {cores},\n"));
        for (i, r) in scale_runs.iter().enumerate() {
            let n = r.scale;
            let comma = if i + 1 < scale_runs.len() { "," } else { "" };
            s.push_str(&format!("    \"scale{n}_rows\": {},\n", r.rows));
            s.push_str(&format!("    \"scale{n}_build_ms\": {:.3},\n", r.build_ms));
            s.push_str(&format!(
                "    \"scale{n}_store_bytes\": {},\n",
                r.store_bytes
            ));
            s.push_str(&format!(
                "    \"scale{n}_store_bytes_naive\": {},\n",
                r.store_bytes_naive
            ));
            s.push_str(&format!(
                "    \"scale{n}_index_bytes\": {},\n",
                r.index_bytes
            ));
            s.push_str(&format!(
                "    \"scale{n}_index_bytes_naive\": {},\n",
                r.index_bytes_naive
            ));
            s.push_str(&format!("    \"scale{n}_heap_bytes\": {},\n", r.heap_bytes));
            s.push_str(&format!(
                "    \"scale{n}_heap_bytes_naive\": {},\n",
                r.heap_bytes_naive
            ));
            s.push_str(&format!(
                "    \"scale{n}_bytes_per_row\": {:.2},\n",
                r.bytes_per_row()
            ));
            s.push_str(&format!(
                "    \"scale{n}_bytes_per_row_naive\": {:.2},\n",
                r.bytes_per_row_naive()
            ));
            if let Some(rss) = r.rss_bytes {
                s.push_str(&format!("    \"scale{n}_rss_bytes\": {rss},\n"));
            }
            s.push_str(&format!("    \"qps_scale{n}\": {:.1}{comma}\n", r.qps));
        }
        s.push_str("  }");
    }
    s.push_str("\n}\n");
    s
}

/// Render the per-rung sweep curve as its own JSON document (the CI
/// artifact behind a knee-gate failure). This file is diagnostic only —
/// `check_regression` never reads it — so it carries the full ladder
/// rather than one flat-keyed scalar per metric.
fn render_sweep_curve(
    profile: &Profile,
    cores: usize,
    cfg: &SweepConfig,
    outcome: &SweepOutcome,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"profile\": \"{}\",\n", profile.name));
    s.push_str(&format!("  \"serve_cores\": {cores},\n"));
    s.push_str(&format!("  \"slo_p95_ms\": {:.1},\n", cfg.slo.p95_ms));
    s.push_str(&format!(
        "  \"slo_max_failure_rate\": {:.3},\n",
        cfg.slo.max_failure_rate
    ));
    s.push_str(&format!(
        "  \"capacity_rps\": {:.1},\n",
        outcome.capacity_rps
    ));
    s.push_str("  \"rungs\": [\n");
    for (i, r) in outcome.rungs.iter().enumerate() {
        let comma = if i + 1 < outcome.rungs.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"target_rps\": {:.1}, \"achieved_rps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"max_ms\": {:.3}, \"completed\": {}, \"failures\": {}, \
             \"timeouts\": {}, \"passed\": {} }}{comma}\n",
            r.target_rps,
            r.run.achieved_rps,
            r.run.p50_ms,
            r.run.p95_ms,
            r.run.p99_ms,
            r.run.max_ms,
            r.run.completed,
            r.run.failures,
            r.run.timeouts,
            r.passed,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
