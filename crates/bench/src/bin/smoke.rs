//! Smoke benchmark: candidate-generation throughput of the exhaustive
//! pipeline vs. the best-first top-k generator, plus executor throughput of
//! the batched hash-join engine vs. the naive nested-loop oracle and the
//! end-to-end `answers_top_k` path, on the default IMDB fixture. Intended
//! for CI (`--smoke`) and for refreshing the `BENCH_baseline.json` snapshot
//! future PRs diff against.
//!
//! ```text
//! cargo run --release -p keybridge-bench --bin smoke -- --smoke
//! cargo run --release -p keybridge-bench --bin smoke -- --out BENCH_baseline.json
//! ```
//!
//! Counts (spaces, materializations, prunes) are deterministic per seed;
//! wall-clock numbers depend on the machine and are recorded for trend
//! spotting only.

use keybridge_core::{
    execute_interpretation, Interpreter, InterpreterConfig, KeywordQuery, TemplateCatalog,
};
use keybridge_index::InvertedIndex;
use keybridge_datagen::{ImdbConfig, ImdbDataset};
use keybridge_relstore::{ExecOptions, ExecStats, ExecStrategy};
use std::time::Instant;

/// Median wall-clock seconds of `f` over `runs` runs (after one warm-up).
fn time<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {} // default behavior; flag kept for CI readability
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("building IMDB fixture…");
    let data = ImdbDataset::generate(ImdbConfig::default()).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
    println!(
        "  {} templates, {} index terms",
        catalog.len(),
        index.term_count()
    );

    // The acceptance scenario: a 4-keyword query with partials enabled.
    let query4 = KeywordQuery::from_terms(vec![
        "hanks".into(),
        "terminal".into(),
        "actor".into(),
        "movie".into(),
    ]);
    let k = 10;

    let exhaustive_len = interpreter.ranked_with_partials(&query4).len();
    let (topk, stats) = interpreter.top_k_with_stats(&query4, k, true);
    let t_exhaustive = time(5, || interpreter.ranked_with_partials(&query4));
    let t_topk = time(5, || interpreter.top_k(&query4, k));

    // Throughput of complete-only generation over a 2-keyword query — the
    // "candidate-generation throughput" headline number.
    let query2 = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
    let t_rank2 = time(10, || interpreter.ranked_interpretations(&query2));
    let space2 = interpreter.ranked_interpretations(&query2).len();
    let t_top2 = time(10, || interpreter.top_k_complete(&query2, k));

    let speedup = t_exhaustive / t_topk.max(1e-12);
    let mat_ratio = exhaustive_len as f64 / (stats.materialized.max(1)) as f64;
    println!("\n== candidate generation (4 keywords, partials) ==");
    println!("  exhaustive : {exhaustive_len} interpretations in {:.2} ms", t_exhaustive * 1e3);
    println!(
        "  best-first : top {} of that space in {:.2} ms ({} materialized, {} expanded, {} pruned)",
        topk.len(),
        t_topk * 1e3,
        stats.materialized,
        stats.expanded,
        stats.pruned,
    );
    println!("  speedup    : {speedup:.1}x wall-clock, {mat_ratio:.1}x fewer materializations");
    println!("\n== complete-only generation (2 keywords) ==");
    println!(
        "  exhaustive : {space2} interpretations in {:.2} ms ({:.0} interpretations/s)",
        t_rank2 * 1e3,
        space2 as f64 / t_rank2.max(1e-12),
    );
    println!("  best-first : top {k} in {:.2} ms", t_top2 * 1e3);

    if stats.materialized * 5 > exhaustive_len && speedup < 2.0 {
        eprintln!(
            "SMOKE FAIL: neither 5x fewer materializations ({mat_ratio:.1}x) \
             nor 2x wall-clock ({speedup:.1}x)"
        );
        std::process::exit(1);
    }

    // == execution: batched hash joins vs. the naive oracle, and the
    //    end-to-end streaming answers path, on the 4-keyword query. ==
    let exec_opts = |strategy| ExecOptions {
        limit: 10_000,
        strategy,
        ..Default::default()
    };
    let sum_stats = |strategy| -> ExecStats {
        let mut total = ExecStats::default();
        for s in &topk {
            if let Ok(r) = execute_interpretation(
                &data.db,
                &index,
                &catalog,
                &s.interpretation,
                exec_opts(strategy),
            ) {
                total.absorb(&r.stats);
            }
        }
        total
    };
    let hj = sum_stats(ExecStrategy::HashJoin);
    let nv = sum_stats(ExecStrategy::Naive);
    let t_exec_hj = time(5, || sum_stats(ExecStrategy::HashJoin));
    let t_exec_nv = time(5, || sum_stats(ExecStrategy::Naive));
    let (answers, astats) = interpreter.answers_top_k_with_stats(&query4, k);
    let t_answers = time(5, || interpreter.answers_top_k(&query4, k));
    println!("\n== execution (top {} interpretations of the 4-keyword query) ==", topk.len());
    println!(
        "  naive      : {} intermediate bindings, {} probes in {:.2} ms",
        nv.intermediate_bindings, nv.probes, t_exec_nv * 1e3
    );
    println!(
        "  hash join  : {} intermediate bindings, {} probes, {} batches, \
         semi-join kept {}/{} rows ({:.0}% pruned) in {:.2} ms",
        hj.intermediate_bindings,
        hj.probes,
        hj.batches,
        hj.semijoin_rows_out,
        hj.semijoin_rows_in,
        hj.semijoin_reduction() * 100.0,
        t_exec_hj * 1e3
    );
    println!(
        "  answers    : top {} end-to-end in {:.2} ms ({} generated, {} executed, \
         {} intermediates)",
        answers.len(),
        t_answers * 1e3,
        astats.generated,
        astats.executed,
        astats.exec.intermediate_bindings,
    );
    if hj.intermediate_bindings >= nv.intermediate_bindings {
        eprintln!(
            "SMOKE FAIL: hash join did not materialize strictly fewer intermediate \
             bindings ({} vs {})",
            hj.intermediate_bindings, nv.intermediate_bindings
        );
        std::process::exit(1);
    }
    println!("\nSMOKE OK");

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"fixture\": \"imdb-default\",\n  \"query4\": \"hanks terminal actor movie\",\n  \"k\": {k},\n  \"exhaustive_candidates\": {exhaustive_len},\n  \"best_first_materialized\": {},\n  \"best_first_expanded\": {},\n  \"best_first_pruned\": {},\n  \"nonempty_probes\": {},\n  \"nonempty_cache_hits\": {},\n  \"complete_space_2kw\": {space2},\n  \"executor\": {{\n    \"naive_intermediate_bindings\": {},\n    \"hashjoin_intermediate_bindings\": {},\n    \"naive_probes\": {},\n    \"hashjoin_probes\": {},\n    \"hashjoin_batches\": {},\n    \"semijoin_rows_in\": {},\n    \"semijoin_rows_out\": {},\n    \"answers_generated\": {},\n    \"answers_executed\": {},\n    \"answers_returned\": {}\n  }},\n  \"wall_clock_ms\": {{\n    \"exhaustive_partials_4kw\": {:.3},\n    \"top10_partials_4kw\": {:.3},\n    \"exhaustive_complete_2kw\": {:.3},\n    \"top10_complete_2kw\": {:.3},\n    \"exec_naive_top10_4kw\": {:.3},\n    \"exec_hashjoin_top10_4kw\": {:.3},\n    \"answers_top10_4kw\": {:.3}\n  }}\n}}\n",
            stats.materialized,
            stats.expanded,
            stats.pruned,
            stats.nonempty_probes,
            stats.nonempty_cache_hits,
            nv.intermediate_bindings,
            hj.intermediate_bindings,
            nv.probes,
            hj.probes,
            hj.batches,
            hj.semijoin_rows_in,
            hj.semijoin_rows_out,
            astats.generated,
            astats.executed,
            answers.len(),
            t_exhaustive * 1e3,
            t_topk * 1e3,
            t_rank2 * 1e3,
            t_top2 * 1e3,
            t_exec_nv * 1e3,
            t_exec_hj * 1e3,
            t_answers * 1e3,
        );
        std::fs::write(&path, json).expect("write baseline");
        println!("baseline written to {path}");
    }
}
