//! Shared fixtures and helpers for the experiment harnesses.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure of
//! the paper's evaluation and prints the same rows/series the paper reports.
//! Run a single one with `cargo bench -p keybridge-bench --bench fig3_5`, or
//! everything with `cargo bench`.

use keybridge_core::{
    IntentDescription, Interpreter, InterpreterConfig, KeywordQuery, ScoredInterpretation,
    TemplateCatalog, TemplatePrior,
};
use keybridge_datagen::{
    ImdbConfig, ImdbDataset, LyricsConfig, LyricsDataset, Workload, WorkloadConfig, WorkloadQuery,
};
use keybridge_index::InvertedIndex;
use keybridge_iqp::{SessionConfig, SimulatedUser};

/// A ready-to-query dataset: database + index + template catalog + workload.
pub struct Fixture {
    pub name: &'static str,
    pub db: keybridge_relstore::Database,
    pub index: InvertedIndex,
    pub catalog: TemplateCatalog,
    pub workload: Workload,
}

/// Number of keyword queries per dataset (the paper used 108 / 76).
pub const IMDB_QUERIES: usize = 108;
pub const LYRICS_QUERIES: usize = 76;

/// The IMDB-like evaluation fixture of §3.8.1.
pub fn imdb_fixture(seed: u64) -> Fixture {
    let data = ImdbDataset::generate(ImdbConfig {
        seed,
        ..Default::default()
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: seed + 1,
            n_queries: IMDB_QUERIES,
            mc_fraction: 0.6,
        },
    );
    Fixture {
        name: "IMDB",
        db: data.db,
        index,
        catalog,
        workload,
    }
}

/// The Lyrics-like evaluation fixture of §3.8.1.
pub fn lyrics_fixture(seed: u64) -> Fixture {
    let data = LyricsDataset::generate(LyricsConfig {
        seed,
        ..Default::default()
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let workload = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: seed + 1,
            n_queries: LYRICS_QUERIES,
            mc_fraction: 0.6,
        },
    );
    Fixture {
        name: "Lyrics",
        db: data.db,
        index,
        catalog,
        workload,
    }
}

impl Fixture {
    /// An interpreter with the given probability configuration and a
    /// bench-friendly interpretation cap.
    pub fn interpreter(
        &self,
        prob: keybridge_core::ProbabilityConfig,
        prior: TemplatePrior,
    ) -> Interpreter<'_> {
        Interpreter::new(
            &self.db,
            &self.index,
            &self.catalog,
            InterpreterConfig {
                max_interpretations: 3000,
                prob,
                prior,
                ..Default::default()
            },
        )
    }

    /// The usage-based template prior mined from the workload (the `TLog`
    /// condition of Fig. 3.5).
    pub fn usage_prior(&self) -> TemplatePrior {
        TemplatePrior::from_usage(
            self.workload
                .template_usage
                .iter()
                .map(|u| (u.tables.clone(), u.count)),
        )
    }

    /// Schema-level ground truth for a workload query.
    pub fn intent(&self, q: &WorkloadQuery) -> IntentDescription {
        IntentDescription {
            bindings: q
                .intent
                .bindings
                .iter()
                .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                .collect(),
            tables: q.intent.tables.clone(),
        }
    }

    /// Run one workload query end to end under an interpreter: ranked list,
    /// target rank, and construction cost. `None` when the generator's
    /// intent is outside the materialized interpretation space (the paper
    /// likewise only evaluates queries whose intent exists).
    pub fn evaluate(
        &self,
        interpreter: &Interpreter<'_>,
        q: &WorkloadQuery,
    ) -> Option<QueryEval> {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interpreter.ranked_interpretations(&query);
        if ranked.is_empty() {
            return None;
        }
        let user = SimulatedUser {
            db: &self.db,
            catalog: &self.catalog,
            intent: self.intent(q),
        };
        let rank = user.rank_of_target(&ranked)?;
        let outcome = user.run(&ranked, SessionConfig::default())?;
        Some(QueryEval {
            candidates: ranked.len(),
            rank,
            steps: outcome.steps,
            remaining: outcome.remaining,
            target_retained: outcome.target_retained,
            ranked,
        })
    }
}

/// Outcome of one evaluated workload query.
pub struct QueryEval {
    /// Size of the materialized interpretation space.
    pub candidates: usize,
    /// 1-based rank of the intent in the ranked list.
    pub rank: usize,
    /// Construction interaction cost (options evaluated).
    pub steps: usize,
    /// Candidates left in the final query window.
    pub remaining: usize,
    /// Whether construction kept the intent in the window.
    pub target_retained: bool,
    /// The ranked interpretations (for downstream metrics).
    pub ranked: Vec<ScoredInterpretation>,
}

/// Print a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Mean of a slice (NaN when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::ProbabilityConfig;

    #[test]
    fn fixtures_build_and_evaluate() {
        // Smaller configs keep this test snappy while exercising the full
        // evaluation path the benches use.
        let data = ImdbDataset::generate(ImdbConfig::tiny(3)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).unwrap();
        let workload = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 4,
                n_queries: 15,
                mc_fraction: 0.5,
            },
        );
        let f = Fixture {
            name: "tiny",
            db: data.db,
            index,
            catalog,
            workload,
        };
        let interp = f.interpreter(ProbabilityConfig::default(), TemplatePrior::Uniform);
        let mut ok = 0;
        for q in &f.workload.queries.clone() {
            if let Some(e) = f.evaluate(&interp, q) {
                assert!(e.rank >= 1 && e.rank <= e.candidates);
                assert!(e.target_retained);
                ok += 1;
            }
        }
        assert!(ok > 0, "no query evaluated");
        let prior = f.usage_prior();
        assert!(matches!(prior, TemplatePrior::Usage { .. }));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "x".into()]],
        );
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

// ---------------------------------------------------------------------------
// Chapter 4 helpers: executed interpretations with simulated assessments.
// ---------------------------------------------------------------------------

use keybridge_core::{BindingAtom, ResultKey};
use keybridge_divq::{executed_div_pool, simulate_assessments, AssessConfig, EvalItem};
use std::collections::BTreeSet;

/// Per-query data for the Chapter 4 experiments: the top interpretations
/// with probabilities, structural atoms, executed result keys, and graded
/// relevance from the simulated assessor population.
pub struct Ch4Data {
    pub probs: Vec<f64>,
    pub atoms: Vec<BTreeSet<BindingAtom>>,
    pub keys: Vec<BTreeSet<ResultKey>>,
    pub relevance: Vec<f64>,
}

impl Ch4Data {
    /// Items in ranking order.
    pub fn eval_items(&self) -> Vec<EvalItem> {
        self.relevance
            .iter()
            .zip(&self.keys)
            .map(|(r, k)| EvalItem {
                relevance: *r,
                keys: k.clone(),
            })
            .collect()
    }

    /// Entropy of the top-10 probabilities (the §4.6.1 ambiguity measure).
    pub fn ambiguity(&self) -> f64 {
        let top: Vec<f64> = self.probs.iter().take(10).copied().collect();
        let total: f64 = top.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for p in &top {
            let p = p / total;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        h
    }
}

/// Build Chapter 4 data for one workload query: rank, truncate to `top`,
/// execute (dropping empty-result interpretations, §4.4.1), and assess.
/// Returns `None` when fewer than `min_interps` interpretations survive.
pub fn ch4_data(
    fixture: &Fixture,
    interpreter: &Interpreter<'_>,
    q: &WorkloadQuery,
    top: usize,
    min_interps: usize,
    assess_seed: u64,
) -> Option<Ch4Data> {
    let query = KeywordQuery::from_terms(q.keywords.clone());
    // The DivQ pool: the top complete AND partial interpretations (§4.4.2),
    // produced best-first — the exhaustive lattice is never materialized —
    // then executed through the batched hash-join engine with one shared
    // cache (empty-result interpretations drop out, §4.4.1).
    let ranked = interpreter.top_k(&query, top);
    let (items, keys, _exec_stats) = executed_div_pool(
        &fixture.db,
        &fixture.index,
        &fixture.catalog,
        &ranked,
        500,
    );
    let probs: Vec<f64> = items.iter().map(|i| i.relevance).collect();
    let atoms: Vec<BTreeSet<BindingAtom>> = items.into_iter().map(|i| i.atoms).collect();
    if probs.len() < min_interps {
        return None;
    }
    let pairs: Vec<(f64, BTreeSet<BindingAtom>)> = probs
        .iter()
        .copied()
        .zip(atoms.iter().cloned())
        .collect();
    let relevance = simulate_assessments(
        &pairs,
        AssessConfig {
            seed: assess_seed,
            ..Default::default()
        },
    );
    Some(Ch4Data {
        probs,
        atoms,
        keys,
        relevance,
    })
}

/// The §4.6.1 query selection: the `n` single-concept and `n` multi-concept
/// queries with the highest top-10 entropy, paired with their data.
pub fn ch4_query_set(
    fixture: &Fixture,
    interpreter: &Interpreter<'_>,
    n: usize,
) -> (Vec<Ch4Data>, Vec<Ch4Data>) {
    let mut sc: Vec<(f64, Ch4Data)> = Vec::new();
    let mut mc: Vec<(f64, Ch4Data)> = Vec::new();
    for (i, q) in fixture.workload.queries.iter().enumerate() {
        let Some(data) = ch4_data(fixture, interpreter, q, 25, 2, 7000 + i as u64) else {
            continue;
        };
        let ambiguity = data.ambiguity();
        if q.multi_concept {
            mc.push((ambiguity, data));
        } else {
            sc.push((ambiguity, data));
        }
    }
    let take_top = |mut v: Vec<(f64, Ch4Data)>| -> Vec<Ch4Data> {
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        v.into_iter().take(n).map(|(_, d)| d).collect()
    };
    (take_top(sc), take_top(mc))
}

// ---------------------------------------------------------------------------
// Chapter 5 helpers: Freebase-scale fixtures and query sampling.
// ---------------------------------------------------------------------------

use keybridge_datagen::{FreebaseConfig, FreebaseDataset};
use keybridge_freeq::SchemaOntology;
use keybridge_relstore::TableId;
use rand::rngs::StdRng;
use rand::Rng;

/// A Freebase-scale fixture: flat schema, index, and the domain ontology.
pub struct FreebaseFixture {
    pub fb: FreebaseDataset,
    pub index: InvertedIndex,
    pub ontology: SchemaOntology,
}

/// Build a Freebase-like fixture of the given shape.
pub fn freebase_fixture(
    domains: usize,
    types_per_domain: usize,
    topics: usize,
    seed: u64,
) -> FreebaseFixture {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        seed,
        domains,
        types_per_domain,
        topics,
        rows_per_table: 25,
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&fb.db);
    let domain_tables: Vec<(String, Vec<TableId>)> = fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let ontology = SchemaOntology::from_domains(&domain_tables);
    FreebaseFixture {
        fb,
        index,
        ontology,
    }
}

impl FreebaseFixture {
    /// Sample a keyword query with ground truth: `n_keywords` keywords, each
    /// drawn from the `name` of a random row of a random type table; the
    /// intended binding of keyword `i` is that table. Retries until every
    /// keyword is ambiguous (occurs in ≥ 2 attributes).
    pub fn sample_query(
        &self,
        n_keywords: usize,
        rng: &mut StdRng,
    ) -> Option<(Vec<String>, Vec<TableId>)> {
        'outer: for _ in 0..200 {
            let mut keywords = Vec::with_capacity(n_keywords);
            let mut targets = Vec::with_capacity(n_keywords);
            for _ in 0..n_keywords {
                let d = &self.fb.domains[rng.gen_range(0..self.fb.domains.len())];
                let t = d.tables[rng.gen_range(0..d.tables.len())];
                let store = self.fb.db.table(t);
                if store.is_empty() {
                    continue 'outer;
                }
                let row = keybridge_relstore::RowId(rng.gen_range(0..store.len() as u32));
                let name = store.row(row)[1].as_text().unwrap_or("");
                let Some(tok) = name.split(' ').next().filter(|s| !s.is_empty()) else {
                    continue 'outer;
                };
                if self.index.attrs_containing(tok).len() < 2 {
                    continue 'outer;
                }
                keywords.push(tok.to_owned());
                targets.push(t);
            }
            return Some((keywords, targets));
        }
        None
    }
}
