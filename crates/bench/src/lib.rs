//! Shared fixtures and helpers for the experiment harnesses.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure of
//! the paper's evaluation and prints the same rows/series the paper reports.
//! Run a single one with `cargo bench -p keybridge-bench --bench fig3_5`, or
//! everything with `cargo bench`.

use keybridge_core::{
    IntentDescription, Interpreter, InterpreterConfig, KeywordQuery, ScoredInterpretation,
    TemplateCatalog, TemplatePrior,
};
use keybridge_datagen::{
    ImdbConfig, ImdbDataset, LyricsConfig, LyricsDataset, MixedOp, Workload, WorkloadConfig,
    WorkloadQuery,
};
use keybridge_index::InvertedIndex;
use keybridge_iqp::{SessionConfig, SimulatedUser};

/// A ready-to-query dataset: database + index + template catalog + workload.
pub struct Fixture {
    pub name: &'static str,
    pub db: keybridge_relstore::Database,
    pub index: InvertedIndex,
    pub catalog: TemplateCatalog,
    pub workload: Workload,
}

/// Number of keyword queries per dataset (the paper used 108 / 76).
pub const IMDB_QUERIES: usize = 108;
pub const LYRICS_QUERIES: usize = 76;

/// The IMDB-like evaluation fixture of §3.8.1.
pub fn imdb_fixture(seed: u64) -> Fixture {
    let data = ImdbDataset::generate(ImdbConfig {
        seed,
        ..Default::default()
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: seed + 1,
            n_queries: IMDB_QUERIES,
            mc_fraction: 0.6,
        },
    );
    Fixture {
        name: "IMDB",
        db: data.db,
        index,
        catalog,
        workload,
    }
}

/// The Lyrics-like evaluation fixture of §3.8.1.
pub fn lyrics_fixture(seed: u64) -> Fixture {
    let data = LyricsDataset::generate(LyricsConfig {
        seed,
        ..Default::default()
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let workload = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: seed + 1,
            n_queries: LYRICS_QUERIES,
            mc_fraction: 0.6,
        },
    );
    Fixture {
        name: "Lyrics",
        db: data.db,
        index,
        catalog,
        workload,
    }
}

impl Fixture {
    /// An interpreter with the given probability configuration and a
    /// bench-friendly interpretation cap.
    pub fn interpreter(
        &self,
        prob: keybridge_core::ProbabilityConfig,
        prior: TemplatePrior,
    ) -> Interpreter<'_> {
        Interpreter::new(
            &self.db,
            &self.index,
            &self.catalog,
            InterpreterConfig {
                max_interpretations: 3000,
                prob,
                prior,
                ..Default::default()
            },
        )
    }

    /// The usage-based template prior mined from the workload (the `TLog`
    /// condition of Fig. 3.5).
    pub fn usage_prior(&self) -> TemplatePrior {
        TemplatePrior::from_usage(
            self.workload
                .template_usage
                .iter()
                .map(|u| (u.tables.clone(), u.count)),
        )
    }

    /// Schema-level ground truth for a workload query.
    pub fn intent(&self, q: &WorkloadQuery) -> IntentDescription {
        IntentDescription {
            bindings: q
                .intent
                .bindings
                .iter()
                .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                .collect(),
            tables: q.intent.tables.clone(),
        }
    }

    /// Run one workload query end to end under an interpreter: ranked list,
    /// target rank, and construction cost. `None` when the generator's
    /// intent is outside the materialized interpretation space (the paper
    /// likewise only evaluates queries whose intent exists).
    pub fn evaluate(&self, interpreter: &Interpreter<'_>, q: &WorkloadQuery) -> Option<QueryEval> {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interpreter.ranked_interpretations(&query);
        if ranked.is_empty() {
            return None;
        }
        let user = SimulatedUser {
            db: &self.db,
            catalog: &self.catalog,
            intent: self.intent(q),
        };
        let rank = user.rank_of_target(&ranked)?;
        let outcome = user.run(&ranked, SessionConfig::default())?;
        Some(QueryEval {
            candidates: ranked.len(),
            rank,
            steps: outcome.steps,
            remaining: outcome.remaining,
            target_retained: outcome.target_retained,
            ranked,
        })
    }
}

/// Outcome of one evaluated workload query.
pub struct QueryEval {
    /// Size of the materialized interpretation space.
    pub candidates: usize,
    /// 1-based rank of the intent in the ranked list.
    pub rank: usize,
    /// Construction interaction cost (options evaluated).
    pub steps: usize,
    /// Candidates left in the final query window.
    pub remaining: usize,
    /// Whether construction kept the intent in the window.
    pub target_retained: bool,
    /// The ranked interpretations (for downstream metrics).
    pub ranked: Vec<ScoredInterpretation>,
}

/// Print a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Mean of a slice (NaN when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::ProbabilityConfig;

    #[test]
    fn fixtures_build_and_evaluate() {
        // Smaller configs keep this test snappy while exercising the full
        // evaluation path the benches use.
        let data = ImdbDataset::generate(ImdbConfig::tiny(3)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).unwrap();
        let workload = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 4,
                n_queries: 15,
                mc_fraction: 0.5,
            },
        );
        let f = Fixture {
            name: "tiny",
            db: data.db,
            index,
            catalog,
            workload,
        };
        let interp = f.interpreter(ProbabilityConfig::default(), TemplatePrior::Uniform);
        let mut ok = 0;
        for q in &f.workload.queries.clone() {
            if let Some(e) = f.evaluate(&interp, q) {
                assert!(e.rank >= 1 && e.rank <= e.candidates);
                assert!(e.target_retained);
                ok += 1;
            }
        }
        assert!(ok > 0, "no query evaluated");
        let prior = f.usage_prior();
        assert!(matches!(prior, TemplatePrior::Usage { .. }));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "x".into()]],
        );
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

// ---------------------------------------------------------------------------
// Chapter 4 helpers: executed interpretations with simulated assessments.
// ---------------------------------------------------------------------------

use keybridge_core::{BindingAtom, ResultKey};
use keybridge_divq::{
    executed_div_pool, simulate_assessments, AssessConfig, DivExecOptions, EvalItem,
};
use std::collections::BTreeSet;

/// Per-query data for the Chapter 4 experiments: the top interpretations
/// with probabilities, structural atoms, executed result keys, and graded
/// relevance from the simulated assessor population.
pub struct Ch4Data {
    pub probs: Vec<f64>,
    pub atoms: Vec<BTreeSet<BindingAtom>>,
    pub keys: Vec<BTreeSet<ResultKey>>,
    pub relevance: Vec<f64>,
}

impl Ch4Data {
    /// Items in ranking order.
    pub fn eval_items(&self) -> Vec<EvalItem> {
        self.relevance
            .iter()
            .zip(&self.keys)
            .map(|(r, k)| EvalItem {
                relevance: *r,
                keys: k.clone(),
            })
            .collect()
    }

    /// Entropy of the top-10 probabilities (the §4.6.1 ambiguity measure).
    pub fn ambiguity(&self) -> f64 {
        let top: Vec<f64> = self.probs.iter().take(10).copied().collect();
        let total: f64 = top.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for p in &top {
            let p = p / total;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        h
    }
}

/// Build Chapter 4 data for one workload query: rank, truncate to `top`,
/// execute (dropping empty-result interpretations, §4.4.1), and assess.
/// Returns `None` when fewer than `min_interps` interpretations survive.
pub fn ch4_data(
    fixture: &Fixture,
    interpreter: &Interpreter<'_>,
    q: &WorkloadQuery,
    top: usize,
    min_interps: usize,
    assess_seed: u64,
) -> Option<Ch4Data> {
    let query = KeywordQuery::from_terms(q.keywords.clone());
    // The DivQ pool: the top complete AND partial interpretations (§4.4.2),
    // produced best-first — the exhaustive lattice is never materialized —
    // then executed through the batched hash-join engine with one shared
    // cache (empty-result interpretations drop out, §4.4.1).
    let ranked = interpreter.top_k(&query, top);
    let (items, keys, _exec_stats) = executed_div_pool(
        &fixture.db,
        &fixture.index,
        &fixture.catalog,
        &ranked,
        DivExecOptions::default(),
    );
    let probs: Vec<f64> = items.iter().map(|i| i.relevance).collect();
    let atoms: Vec<BTreeSet<BindingAtom>> = items.into_iter().map(|i| i.atoms).collect();
    if probs.len() < min_interps {
        return None;
    }
    let pairs: Vec<(f64, BTreeSet<BindingAtom>)> =
        probs.iter().copied().zip(atoms.iter().cloned()).collect();
    let relevance = simulate_assessments(
        &pairs,
        AssessConfig {
            seed: assess_seed,
            ..Default::default()
        },
    );
    Some(Ch4Data {
        probs,
        atoms,
        keys,
        relevance,
    })
}

/// The §4.6.1 query selection: the `n` single-concept and `n` multi-concept
/// queries with the highest top-10 entropy, paired with their data.
pub fn ch4_query_set(
    fixture: &Fixture,
    interpreter: &Interpreter<'_>,
    n: usize,
) -> (Vec<Ch4Data>, Vec<Ch4Data>) {
    let mut sc: Vec<(f64, Ch4Data)> = Vec::new();
    let mut mc: Vec<(f64, Ch4Data)> = Vec::new();
    for (i, q) in fixture.workload.queries.iter().enumerate() {
        let Some(data) = ch4_data(fixture, interpreter, q, 25, 2, 7000 + i as u64) else {
            continue;
        };
        let ambiguity = data.ambiguity();
        if q.multi_concept {
            mc.push((ambiguity, data));
        } else {
            sc.push((ambiguity, data));
        }
    }
    let take_top = |mut v: Vec<(f64, Ch4Data)>| -> Vec<Ch4Data> {
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        v.into_iter().take(n).map(|(_, d)| d).collect()
    };
    (take_top(sc), take_top(mc))
}

// ---------------------------------------------------------------------------
// Serving-layer helpers: query-log replay through a SearchService with
// QPS / latency-percentile accounting, used by the `smoke --serve` workload
// driver and the `serve_throughput` criterion bench.
// ---------------------------------------------------------------------------

use keybridge_core::{SearchService, SearchSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

mod openloop;
pub use openloop::{
    openloop_schedule, queue_latencies, run_open_loop, sweep_capacity, MixWeights, ModeCounts,
    OpMode, OpenLoopConfig, OpenLoopOp, OpenLoopRun, SloConfig, SweepConfig, SweepOutcome,
    SweepRung,
};

/// One replay of a query log through a service: wall-clock throughput and
/// the per-request latency distribution.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Worker threads serving.
    pub workers: usize,
    /// Requests completed.
    pub queries: usize,
    /// Completed requests per second of wall-clock.
    pub qps: f64,
    /// Latency percentiles, milliseconds.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

/// Nearest-rank percentile of a sorted sample, `q` in [0, 1]: the smallest
/// element with at least `q·n` of the sample at or below it, i.e. rank
/// `⌈q·n⌉` (1-based, clamped to the sample). The previous
/// `round(q·(n-1))` interpolation rounded the median of an even-sized
/// sample *up* a rank — `percentile([1,2,3,4], 0.5)` said 3 where
/// nearest-rank says 2 — overstating every even-n tail quantile by up to
/// one rank. Empty input is NaN.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Replay `queries` through a fresh `workers`-thread [`SearchService`] over
/// `snapshot`, closed-loop from `workers` client threads pulling work off a
/// shared cursor. Each request's latency is the client-observed
/// submit-to-reply time. The service (and its shared caches) starts cold, so
/// runs at different worker counts do the same total work and are
/// comparable.
pub fn replay_serve(
    snapshot: &Arc<SearchSnapshot>,
    queries: &[Vec<String>],
    workers: usize,
    k: usize,
) -> ServeRun {
    let service = SearchService::start(Arc::clone(snapshot), workers);
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let service = &service;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            return mine;
                        }
                        let q = keybridge_core::KeywordQuery::from_terms(queries[i].clone());
                        let t = Instant::now();
                        let answers = service.search(&q, k);
                        mine.push(t.elapsed().as_secs_f64() * 1e3);
                        std::hint::black_box(answers);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ServeRun {
        workers,
        queries: latencies.len(),
        qps: latencies.len() as f64 / elapsed.max(1e-12),
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
    }
}

/// One diversified replay through a service: throughput of the Alg. 4.1
/// serving mode plus its deterministic diversification counters.
#[derive(Debug, Clone)]
pub struct DivServeRun {
    /// Diversified requests completed.
    pub queries: usize,
    /// Completed diversified requests per second of wall-clock.
    pub qps: f64,
    /// Sum of surviving executed-pool sizes across all replies. Purely a
    /// function of the data and the query log — deterministic warm or cold,
    /// at any worker count — so CI gates it strictly.
    pub pool_items: usize,
    /// Sum of selected answers across all replies (deterministic likewise).
    pub selected: usize,
}

/// Replay `queries` as diversified top-k requests through a fresh
/// `workers`-thread [`SearchService`] over `snapshot`, closed-loop like
/// [`replay_serve`]. The per-reply pool/selection sizes are accumulated —
/// they are deterministic, so any drift is a behavior change, not noise.
pub fn replay_diversified(
    snapshot: &Arc<SearchSnapshot>,
    queries: &[Vec<String>],
    workers: usize,
    opts: keybridge_core::DiversifyOptions,
) -> DivServeRun {
    let service = SearchService::start(Arc::clone(snapshot), workers);
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let per_client: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let service = &service;
                let cursor = &cursor;
                scope.spawn(move || {
                    let (mut n, mut pool, mut selected) = (0usize, 0usize, 0usize);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            return (n, pool, selected);
                        }
                        let q = keybridge_core::KeywordQuery::from_terms(queries[i].clone());
                        let reply = service.search_diversified(&q, opts);
                        n += 1;
                        pool += reply.pool;
                        selected += reply.answers.len();
                        std::hint::black_box(reply);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let queries_done: usize = per_client.iter().map(|c| c.0).sum();
    DivServeRun {
        queries: queries_done,
        qps: queries_done as f64 / elapsed.max(1e-12),
        pool_items: per_client.iter().map(|c| c.1).sum(),
        selected: per_client.iter().map(|c| c.2).sum(),
    }
}

/// One mixed read/write replay: live-write throughput plus the post-update
/// serving rate, with the deterministic epoch/cache counters CI gates on.
#[derive(Debug, Clone)]
pub struct IngestRun {
    /// Rows accepted across all batches.
    pub rows: usize,
    /// Batches ingested (= epochs published).
    pub batches: usize,
    /// Epoch swaps the service performed (deterministic: one per batch).
    pub epoch_swaps: usize,
    /// Shared-cache entries retired with displaced epochs. Deterministic
    /// here: the replay is sequential on a single worker, so each swap
    /// displaces exactly the generation the preceding queries warmed.
    pub stale_evictions: usize,
    /// Ingested rows per second of ingest-call wall-clock (batch validation
    /// + pk/fk index maintenance + posting splices + snapshot publish).
    pub rows_per_s: f64,
    /// Closed-loop QPS of a full query-log replay *after* the last swap
    /// (cold final-epoch caches: the price of freshness).
    pub post_qps: f64,
}

/// Drive the live-ingestion path once: boot a single-worker
/// [`SearchService`] over `initial` and replay the mixed read/write `ops`
/// stream in order — queries served, insert batches ingested (each timed) —
/// then replay all the stream's queries against the fully grown service
/// (timed). The single worker and sequential replay keep every counter
/// reproducible; multi-worker serving rates are `replay_serve`'s job.
pub fn replay_ingest(
    initial: &keybridge_relstore::Database,
    ops: &[MixedOp],
    catalog: TemplateCatalog,
    k: usize,
) -> IngestRun {
    let service = SearchService::start(
        Arc::new(SearchSnapshot::new(
            initial.clone(),
            InvertedIndex::build(initial),
            catalog,
            InterpreterConfig::default(),
        )),
        1,
    );
    let mut rows = 0usize;
    let mut batches = 0usize;
    let mut ingest_secs = 0.0f64;
    let mut queries: Vec<&Vec<String>> = Vec::new();
    for op in ops {
        match op {
            MixedOp::Query(terms) => {
                let _ = service.search(&KeywordQuery::from_terms(terms.clone()), k);
                queries.push(terms);
            }
            MixedOp::Insert(batch) => {
                let t = Instant::now();
                rows += service
                    .ingest(batch)
                    .expect("FK-safe schedule ingests cleanly")
                    .rows;
                ingest_secs += t.elapsed().as_secs_f64();
                batches += 1;
            }
        }
    }
    let t = Instant::now();
    for terms in &queries {
        let _ = service.search(&KeywordQuery::from_terms((*terms).clone()), k);
    }
    let post_secs = t.elapsed().as_secs_f64();
    let stats = service.stats();
    IngestRun {
        rows,
        batches,
        epoch_swaps: stats.epoch_swaps,
        stale_evictions: stats.stale_evictions,
        rows_per_s: rows as f64 / ingest_secs.max(1e-12),
        post_qps: queries.len() as f64 / post_secs.max(1e-12),
    }
}

/// One durability drill: WAL volume under a mixed schedule's insert
/// batches, a mid-stream checkpoint, and the timed crash-recovery reopen.
/// `wal_batches`, `checkpoints`, and `replayed_batches` are pure functions
/// of the schedule (CI gates them); `recovery_ms` is the wall-clock price
/// of `SearchService::open` and `wal_bytes` the log volume, both recorded
/// for trend-watching.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// WAL records appended (one per insert batch of the schedule).
    pub wal_batches: usize,
    /// WAL bytes appended, CRC framing included.
    pub wal_bytes: u64,
    /// Checkpoints taken (exactly one, mid-stream).
    pub checkpoints: usize,
    /// Batches the recovery replayed from the WAL tail — the post-checkpoint
    /// half of the schedule.
    pub replayed_batches: usize,
    /// Wall-clock of `SearchService::open`: snapshot load + WAL replay +
    /// catalog re-enumeration. Median of three reopens (recovery does not
    /// consume the store, so it can be timed repeatedly).
    pub recovery_ms: f64,
}

/// Drive the durability path once: boot a single-worker durable
/// [`SearchService`] over `initial` in `dir`, ingest every insert batch of
/// the mixed `ops` stream (checkpointing once halfway), drop the service —
/// the simulated crash — and reopen the store, timed. The recovered epoch
/// must equal the batch count; the directory is removed afterwards.
pub fn replay_recovery(
    initial: &keybridge_relstore::Database,
    ops: &[MixedOp],
    opts: &keybridge_core::DurableOptions,
    dir: &std::path::Path,
) -> RecoveryRun {
    let _ = std::fs::remove_dir_all(dir);
    let catalog = TemplateCatalog::enumerate(initial, opts.max_joins, opts.max_templates)
        .expect("schema enumerates");
    let service = SearchService::start_durable(
        Arc::new(SearchSnapshot::new(
            initial.clone(),
            InvertedIndex::build(initial),
            catalog,
            opts.config.clone(),
        )),
        1,
        dir,
        opts,
    )
    .expect("fresh durable directory");
    let batches: Vec<_> = ops
        .iter()
        .filter_map(|op| match op {
            MixedOp::Insert(batch) => Some(batch),
            MixedOp::Query(_) => None,
        })
        .collect();
    let mid = batches.len().div_ceil(2);
    for (i, batch) in batches.iter().enumerate() {
        service
            .ingest(batch)
            .expect("FK-safe schedule ingests cleanly");
        if i + 1 == mid {
            service.checkpoint().expect("checkpoint succeeds");
        }
    }
    let stats = service.stats();
    let (wal_batches, wal_bytes, checkpoints) =
        (stats.wal_batches, stats.wal_bytes, stats.checkpoints);
    drop(service); // the crash: all in-memory state is gone

    // Recovery is read-only on an untorn log, so the reopen can be timed
    // repeatedly; the median tames fsync/page-cache jitter in the gated
    // wall-clock number.
    let mut samples = Vec::new();
    let mut replayed_batches = 0;
    for _ in 0..3 {
        let t = Instant::now();
        let recovered = SearchService::open(dir, 1, opts).expect("store recovers");
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            recovered.current_epoch().0 as usize,
            batches.len(),
            "recovery lost batches"
        );
        replayed_batches = recovered.stats().recovery_replayed_batches;
        assert_eq!(replayed_batches, batches.len() - mid, "unexpected replay");
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let recovery_ms = samples[samples.len() / 2];
    let _ = std::fs::remove_dir_all(dir);
    RecoveryRun {
        wal_batches,
        wal_bytes,
        checkpoints,
        replayed_batches,
        recovery_ms,
    }
}

// ---------------------------------------------------------------------------
// Baseline bookkeeping: a dependency-free scanner for the flat-keyed
// BENCH_*.json snapshots and the regression comparator behind
// `smoke --check` (the CI perf gate).
// ---------------------------------------------------------------------------

/// A scalar read out of a baseline snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineValue {
    Num(f64),
    Str(String),
}

/// Scan `"key": value` pairs out of a JSON document into a flat map.
/// The snapshot format keeps every metric key unique across the whole file
/// precisely so this scanner (no serde in the offline build) is enough;
/// nested object structure is ignored. Keys that introduce objects are
/// skipped; numbers and strings are kept.
pub fn parse_baseline(json: &str) -> std::collections::HashMap<String, BaselineValue> {
    let mut out = std::collections::HashMap::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Find the next quoted key.
        let Some(ks) = json[i..].find('"').map(|p| i + p + 1) else {
            break;
        };
        let Some(ke) = json[ks..].find('"').map(|p| ks + p) else {
            break;
        };
        let key = &json[ks..ke];
        let mut j = ke + 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b':' {
            i = ke + 1; // a string *value*; skip
            continue;
        }
        j += 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        match bytes.get(j) {
            Some(b'"') => {
                let vs = j + 1;
                let Some(ve) = json[vs..].find('"').map(|p| vs + p) else {
                    break;
                };
                out.insert(key.to_owned(), BaselineValue::Str(json[vs..ve].to_owned()));
                i = ve + 1;
            }
            Some(b'{') | Some(b'[') => {
                i = j + 1; // structural: descend, keys stay globally unique
            }
            _ => {
                let ve = json[j..]
                    .find([',', '}', ']', '\n'])
                    .map(|p| j + p)
                    .unwrap_or(bytes.len());
                if let Ok(n) = json[j..ve].trim().parse::<f64>() {
                    out.insert(key.to_owned(), BaselineValue::Num(n));
                }
                i = ve;
            }
        }
    }
    out
}

/// How much worse a metric may get before the gate trips. Gated keys:
/// wall-clock / p50 latency (`*_ms*`, lower-better), throughput (`qps_*`,
/// higher-better), and the deterministic cost counters of `COUNTER_KEYS`.
/// Tail percentiles (`p95*`, `p99*`) are recorded but informational — under
/// worker oversubscription they jitter far beyond any useful gate.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Wall-clock (and QPS) regressions beyond this factor fail (issue
    /// mandate: 1.5x).
    pub wall_factor: f64,
    /// Deterministic counters may grow by at most this factor.
    pub counter_factor: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            wall_factor: 1.5,
            counter_factor: 1.05,
        }
    }
}

/// Deterministic cost counters gated with `counter_factor` (lower is
/// better). Everything numeric not listed here and not matched by the name
/// conventions below is informational.
const COUNTER_KEYS: &[&str] = &[
    "best_first_materialized",
    "best_first_expanded",
    "nonempty_probes",
    "naive_intermediate_bindings",
    "hashjoin_intermediate_bindings",
    "naive_probes",
    "hashjoin_probes",
    "hashjoin_batches",
    "answers_generated",
    "answers_executed",
    "ingest_rows",
    "ingest_batches",
    "epoch_swaps",
    "stale_evictions",
    "div_pool_items",
    "div_selected",
    "wal_batches",
    "recovery_replayed_batches",
    "recovery_checkpoints",
    "openloop_search_ops",
    "openloop_diversified_ops",
    "openloop_session_ops",
    "openloop_ingest_ops",
    "shard_epoch_swaps",
    "shards_touched",
    "shard_rows_skipped",
    "batch_cols",
    "batch_allocs",
];

/// The serve-phase deterministic counters: the ingest epoch/eviction
/// figures (single worker, sequential warm-up, fixed seed) and the
/// diversification pool/selection sizes (pure functions of data + log).
/// Gated even across machines with different core counts — but, like every
/// serve-section key, only emitted by `--serve` runs, so their absence from
/// a run without a serve section is not a violation.
const SERVE_ONLY_COUNTER_KEYS: &[&str] = &[
    "ingest_rows",
    "ingest_batches",
    "epoch_swaps",
    "stale_evictions",
    "div_pool_items",
    "div_selected",
    "wal_batches",
    "recovery_replayed_batches",
    "recovery_checkpoints",
    // The open-loop sweep's per-mode schedule counts: the arrival schedule
    // is seeded and rate-independent, so these are pure functions of the
    // sweep config and gate strictly on any machine.
    "openloop_search_ops",
    "openloop_diversified_ops",
    "openloop_session_ops",
    "openloop_ingest_ops",
    // The sharded phase's routing counters: per-shard epoch advances and
    // distinct shards ever touched are pure functions of the fixture, the
    // holdout plan, and the shard directory — machine-independent.
    "shard_epoch_swaps",
    "shards_touched",
    // Rows the sharded coordinator's bounded top-k merge gathered but never
    // examined: a pure function of the fixture, the holdout plan, and the
    // shard directory, so it gates on any machine.
    "shard_rows_skipped",
    // Not a counter, but serve-section-only like the rest: its absence from
    // a run without a serve section must be excused, while its presence
    // gates through the `_ms` wall-clock rule.
    "recovery_ms",
    // The capacity knee is a rate (higher is better, like `qps_*`) and just
    // as machine-dependent, so it follows the serve-rate rules: gated on
    // matching hardware, informational across differing core counts,
    // excused when the current run has no serve section.
    "capacity_rps",
];

/// Keys emitted only by `--scale` runs (the storage-footprint tier). Like
/// the serve-only keys, their absence from a run without a scale section is
/// excused; their presence gates through the usual name-convention rules.
fn is_scale_key(key: &str) -> bool {
    key.starts_with("qps_scale") || (key.starts_with("scale") && key != "scale_cores")
}

/// The scale tier's deterministic footprint counters: fixture row counts
/// and the interned/delta-coded snapshot sizes are pure functions of the
/// generator seed and the codecs, so they gate with `counter_factor` on any
/// machine — this is the memory-footprint regression gate. The `_naive`
/// reference sizes and the heap model stay informational.
fn is_scale_counter(key: &str) -> bool {
    key.starts_with("scale")
        && (key.ends_with("_rows")
            || key.ends_with("_store_bytes")
            || key.ends_with("_index_bytes")
            || key.ends_with("_bytes_per_row"))
}

/// String keys that must match exactly for two snapshots to be comparable
/// at all (a quick-profile run must never be diffed against a full-profile
/// baseline).
const IDENTITY_KEYS: &[&str] = &["fixture", "profile", "query4"];

/// Compare a current snapshot against the committed baseline. Returns the
/// list of violations (empty = gate passes) or an error when the snapshots
/// are not comparable.
pub fn check_regression(
    baseline_json: &str,
    current_json: &str,
    cfg: CheckConfig,
) -> Result<Vec<String>, String> {
    let base = parse_baseline(baseline_json);
    let cur = parse_baseline(current_json);
    if base.is_empty() {
        return Err("baseline snapshot is empty or unparseable".into());
    }
    for key in IDENTITY_KEYS {
        match (base.get(*key), cur.get(*key)) {
            (Some(b), Some(c)) if b == c => {}
            (None, None) => {}
            (b, c) => {
                return Err(format!(
                    "snapshots not comparable: {key:?} differs ({b:?} vs {c:?}); \
                     regenerate the baseline with the current profile"
                ));
            }
        }
    }
    // Serve QPS and latency depend on the machine's core count; comparing
    // them across different hardware is systematic noise, not regression
    // (p50 at worker counts above the core count shifts by design). When
    // the recorded core counts differ, serve metrics go informational —
    // counters and the single-threaded wall-clock sections still gate.
    let serve_comparable = base.get("serve_cores") == cur.get("serve_cores");
    let cur_has_serve = cur.contains_key("serve_cores");
    // The scale tier carries its own comparability marker, so a baseline
    // recorded with `--serve --scale` still gates its footprint counters
    // against a `--scale`-only run (and vice versa).
    let scale_comparable = base.get("scale_cores") == cur.get("scale_cores");
    let cur_has_scale = cur.contains_key("scale_cores");
    let mut violations = Vec::new();
    for (key, bval) in &base {
        let serve_counter = SERVE_ONLY_COUNTER_KEYS.contains(&key.as_str());
        // Machine-dependent serve rates are incomparable across core
        // counts — the closed-loop QPS figures, the per-worker latencies,
        // and the open-loop capacity knee alike. The deterministic serve
        // counters stay gated: none of them is a rate, so none matches
        // these name patterns.
        if !serve_comparable
            && !key.starts_with("qps_scale")
            && (key.starts_with("qps_") || key.contains("_ms_w") || key == "capacity_rps")
        {
            continue;
        }
        // The per-scale replay QPS follows the scale tier's own marker.
        if !scale_comparable && key.starts_with("qps_scale") {
            continue;
        }
        let BaselineValue::Num(b) = bval else {
            continue;
        };
        // Informational keys: tail percentiles, and any latency at worker
        // counts above one — those distributions are queueing-dominated
        // under oversubscription (the committed baseline's own p50 grows
        // 8x from w1 to w8 with zero code change), so only the w1 latency
        // and the QPS figures carry regression signal.
        let informational = key.starts_with("p95")
            || key.starts_with("p99")
            || (key.contains("_ms_w") && !key.ends_with("_w1"));
        let gated = !informational
            && (key.contains("_ms")
                || key.starts_with("wall_")
                || key.starts_with("qps_")
                || key == "capacity_rps"
                || COUNTER_KEYS.contains(&key.as_str())
                || is_scale_counter(key));
        let Some(BaselineValue::Num(c)) = cur.get(key) else {
            // Only a gated metric is required to be present; informational
            // keys (e.g. the serve section of a --check run without
            // --serve) may come and go. Ingest/diversification counters are
            // gated but live in the serve section, so they are only
            // *required* when the current run produced one — and the scale
            // tier's keys likewise only when the run passed --scale.
            let excused =
                (serve_counter && !cur_has_serve) || (is_scale_key(key) && !cur_has_scale);
            if gated && !excused {
                violations.push(format!("metric {key} missing from current run"));
            }
            continue;
        };
        let (b, c) = (*b, *c);
        if !gated {
            continue;
        }
        if key.contains("_ms") || key.starts_with("wall_") {
            // Lower is better; small absolute epsilon absorbs timer noise
            // on sub-millisecond sections.
            if c > b * cfg.wall_factor + 0.05 {
                violations.push(format!(
                    "wall-clock regression: {key} {c:.3} ms vs baseline {b:.3} ms \
                     (>{:.2}x)",
                    cfg.wall_factor
                ));
            }
        } else if key.starts_with("qps_") || key == "capacity_rps" {
            // Higher is better. The sweep ladder grows by 1.25x per rung,
            // so one rung of quantization noise stays under the 1.5x gate.
            if c < b / cfg.wall_factor - 1e-9 {
                violations.push(format!(
                    "throughput regression: {key} {c:.1} vs baseline {b:.1} \
                     (<1/{:.2}x)",
                    cfg.wall_factor
                ));
            }
        } else if (COUNTER_KEYS.contains(&key.as_str()) || is_scale_counter(key))
            && c > b * cfg.counter_factor + 1e-9
        {
            violations.push(format!(
                "counter regression: {key} {c:.0} vs baseline {b:.0} \
                 (>{:.2}x)",
                cfg.counter_factor
            ));
        }
    }
    violations.sort();
    Ok(violations)
}

#[cfg(test)]
mod baseline_tests {
    use super::*;

    const BASE: &str = r#"{
  "fixture": "imdb-quick",
  "profile": "quick",
  "nonempty_probes": 10,
  "executor": { "hashjoin_probes": 100, "semijoin_rows_in": 5000,
    "batch_cols": 400, "batch_allocs": 12, "arena_bytes_peak": 32768 },
  "wall_clock_ms": { "answers_top10_4kw_ms": 1.000 },
  "serve": { "serve_cores": 8, "qps_w1": 200.0, "p50_ms_w1": 1.0, "p50_ms_w4": 2.0, "p95_ms_w1": 3.0,
    "qps_diversified": 120.0, "div_pool_items": 40, "div_selected": 30,
    "ingest_rows": 500, "ingest_batches": 6, "epoch_swaps": 6, "stale_evictions": 40,
    "ingest_rows_per_s": 9000.0, "qps_post_ingest": 150.0,
    "wal_batches": 6, "wal_bytes": 20000, "recovery_checkpoints": 1,
    "recovery_replayed_batches": 3, "recovery_ms": 12.0,
    "capacity_rps": 800.0, "p95_at_capacity_ms": 12.0,
    "openloop_search_ops": 216, "openloop_diversified_ops": 10,
    "openloop_session_ops": 9, "openloop_ingest_ops": 5,
    "shard_epoch_swaps": 8, "shards_touched": 4, "shard_rows_skipped": 90,
    "p95_sharded_ms": 6.0 },
  "scale": { "scale_cores": 8,
    "scale1_rows": 3068, "scale1_build_ms": 40.0,
    "scale1_store_bytes": 100000, "scale1_store_bytes_naive": 150000,
    "scale1_index_bytes": 50000, "scale1_index_bytes_naive": 90000,
    "scale1_heap_bytes": 400000, "scale1_heap_bytes_naive": 600000,
    "scale1_bytes_per_row": 48.9, "scale1_bytes_per_row_naive": 78.2,
    "qps_scale1": 900.0,
    "scale10_rows": 30518, "scale10_build_ms": 400.0,
    "scale10_store_bytes": 1000000, "scale10_store_bytes_naive": 1500000,
    "scale10_index_bytes": 500000, "scale10_index_bytes_naive": 900000,
    "scale10_heap_bytes": 4000000, "scale10_heap_bytes_naive": 6000000,
    "scale10_bytes_per_row": 49.2, "scale10_bytes_per_row_naive": 78.6,
    "scale10_rss_bytes": 60000000,
    "qps_scale10": 120.0 }
}"#;

    fn with(key: &str, val: &str) -> String {
        // Rewrite one scalar in BASE by key.
        let needle = format!("\"{key}\":");
        let start = BASE.find(&needle).expect("key present") + needle.len();
        let end = start + BASE[start..].find([',', '\n', '}']).unwrap();
        format!("{} {val}{}", &BASE[..start], &BASE[end..])
    }

    #[test]
    fn parser_reads_nested_numbers_and_strings() {
        let m = parse_baseline(BASE);
        assert_eq!(m["profile"], BaselineValue::Str("quick".into()));
        assert_eq!(m["hashjoin_probes"], BaselineValue::Num(100.0));
        assert_eq!(m["p95_ms_w1"], BaselineValue::Num(3.0));
        assert_eq!(m["qps_w1"], BaselineValue::Num(200.0));
    }

    #[test]
    fn identical_snapshots_pass() {
        assert_eq!(
            check_regression(BASE, BASE, CheckConfig::default()).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn wall_clock_regression_fails() {
        let cur = with("answers_top10_4kw_ms", "1.700");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("answers_top10_4kw_ms"), "{v:?}");
        // 1.4x stays under the 1.5x gate.
        let ok = with("answers_top10_4kw_ms", "1.400");
        assert!(check_regression(BASE, &ok, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn counter_regression_fails_but_informational_keys_do_not() {
        let cur = with("hashjoin_probes", "120");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("hashjoin_probes")), "{v:?}");
        // semijoin_rows_in is informational: growing it is not a violation.
        let cur = with("semijoin_rows_in", "9000");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn qps_drop_fails_and_missing_metric_fails() {
        let cur = with("qps_w1", "100.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("qps_w1")), "{v:?}");
        let cur = BASE.replace("\"nonempty_probes\": 10,", "");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("missing")), "{v:?}");
    }

    #[test]
    fn core_count_mismatch_makes_serve_metrics_informational() {
        // Same qps drop that fails on matching hardware is skipped when the
        // snapshots were recorded on different core counts...
        let cur = with("qps_w1", "100.0").replace("\"serve_cores\": 8", "\"serve_cores\": 4");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // ...and so is serve latency, while deterministic counters still gate.
        let cur = with("p50_ms_w1", "9.0").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        let cur =
            with("hashjoin_probes", "200").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("hashjoin_probes")), "{v:?}");
    }

    #[test]
    fn oversubscribed_latency_is_informational_but_w1_is_gated() {
        let cur = with("p50_ms_w4", "9.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        let cur = with("p50_ms_w1", "9.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("p50_ms_w1")), "{v:?}");
    }

    #[test]
    fn ingest_counters_gate_even_across_core_counts() {
        // epoch_swaps is deterministic: growing it is a violation even when
        // the machines differ (serve rates would be skipped).
        let cur = with("epoch_swaps", "9").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("epoch_swaps")), "{v:?}");
        let cur = with("stale_evictions", "100");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("stale_evictions")), "{v:?}");
        // Within the 1.05x counter slack: fine.
        let cur = with("ingest_rows", "510");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn post_ingest_qps_gates_like_serve_qps() {
        let cur = with("qps_post_ingest", "90.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("qps_post_ingest")), "{v:?}");
        // Machine-dependent: skipped across differing core counts.
        let cur =
            with("qps_post_ingest", "90.0").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        // Raw ingest rows/s is informational either way.
        let cur = with("ingest_rows_per_s", "100.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn diversification_counters_gate_even_across_core_counts() {
        // div_pool_items / div_selected are pure functions of data + query
        // log: growth is a behavior change, not machine noise.
        let cur = with("div_pool_items", "60").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("div_pool_items")), "{v:?}");
        let cur = with("div_selected", "45");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("div_selected")), "{v:?}");
        // Within the 1.05x counter slack: fine.
        let cur = with("div_pool_items", "41");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn diversified_qps_gates_like_serve_qps() {
        let cur = with("qps_diversified", "70.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("qps_diversified")), "{v:?}");
        // Machine-dependent: skipped across differing core counts.
        let cur =
            with("qps_diversified", "70.0").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn shard_routing_counters_gate_even_across_core_counts() {
        // A batch suddenly touching more shards (or the service spreading
        // writes over shards it never used) is a routing behavior change,
        // on any machine.
        let cur =
            with("shard_epoch_swaps", "12").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("shard_epoch_swaps")), "{v:?}");
        let cur = with("shards_touched", "6");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("shards_touched")), "{v:?}");
        // The sharded open-loop tail latency is informational.
        let cur = with("p95_sharded_ms", "60.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        // A run without a serve section is excused from the routing
        // counters like every other serve-only key.
        let (i, j) = {
            let start = BASE.find("\"serve\"").unwrap();
            (start, BASE.rfind('}').unwrap())
        };
        let cur = format!("{}}}", &BASE[..i].trim_end().trim_end_matches(','));
        let _ = j;
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(
            !v.iter().any(|s| s.contains("shard")),
            "serve-only shard counters must be excused without a serve section: {v:?}"
        );
    }

    #[test]
    fn arena_counters_gate_but_peak_bytes_are_informational() {
        // batch_cols / batch_allocs are pure functions of the replay plan
        // and the arena policy: growth means the executor started
        // allocating per batch again.
        let cur = with("batch_cols", "480");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("batch_cols")), "{v:?}");
        let cur = with("batch_allocs", "24");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("batch_allocs")), "{v:?}");
        // The arena's peak footprint tracks Vec growth policy, not behavior:
        // informational.
        let cur = with("arena_bytes_peak", "99999999");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bounded_merge_skip_counter_gates_even_across_core_counts() {
        // shard_rows_skipped is a pure function of fixture + plan + shard
        // directory: growth means shards started over-fetching rows the
        // coordinator throws away.
        let cur =
            with("shard_rows_skipped", "120").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("shard_rows_skipped")), "{v:?}");
        // Within the 1.05x counter slack: fine.
        let cur = with("shard_rows_skipped", "93");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scale_rss_probe_is_informational() {
        // RSS is an OS-level measurement (page-cache and allocator noise):
        // recorded next to the heap model for honesty, never gated.
        let cur = with("scale10_rss_bytes", "999999999");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        // And a baseline recorded with the probe must not fail a current
        // run that lacks it (non-Linux hosts).
        let cur = BASE.replace("\"scale10_rss_bytes\": 60000000,", "");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn recovery_counters_gate_even_across_core_counts() {
        // The WAL record count and the replayed-batch count are pure
        // functions of the schedule: growth means the durability path
        // changed behavior, on any machine.
        let cur = with("wal_batches", "9").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("wal_batches")), "{v:?}");
        let cur = with("recovery_replayed_batches", "5");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(
            v.iter().any(|s| s.contains("recovery_replayed_batches")),
            "{v:?}"
        );
        // WAL volume is informational: record framing may legitimately grow.
        let cur = with("wal_bytes", "90000");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn recovery_wall_clock_gates_like_other_ms_keys() {
        let cur = with("recovery_ms", "30.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("recovery_ms")), "{v:?}");
        // Within the 1.5x wall gate: fine.
        let cur = with("recovery_ms", "16.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn capacity_knee_gates_like_a_throughput_key() {
        // A knee collapse beyond 1/1.5x fails on matching hardware...
        let cur = with("capacity_rps", "500.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("capacity_rps")), "{v:?}");
        // ...one sweep rung of quantization (1/1.25x) stays under the gate...
        let cur = with("capacity_rps", "640.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        // ...and across differing core counts the knee is machine noise.
        let cur = with("capacity_rps", "200.0").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn p95_at_capacity_is_informational() {
        // A tail percentile, so recorded but never gated — the SLO check
        // inside the sweep already bounded it at measurement time.
        let cur = with("p95_at_capacity_ms", "90.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn openloop_schedule_counters_gate_even_across_core_counts() {
        // The arrival schedule is seeded and rate-independent: per-mode op
        // counts are pure functions of the sweep config, on any machine.
        let cur =
            with("openloop_search_ops", "260").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("openloop_search_ops")), "{v:?}");
        let cur = with("openloop_ingest_ops", "7");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("openloop_ingest_ops")), "{v:?}");
        // Dropping a gated schedule counter from a serve run is a violation.
        let cur = BASE.replace("\"openloop_session_ops\": 9,", "");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(
            v.iter()
                .any(|s| s.contains("openloop_session_ops") && s.contains("missing")),
            "{v:?}"
        );
    }

    #[test]
    fn scale_footprint_counters_gate_even_across_core_counts() {
        // Snapshot sizes and fixture row counts are pure functions of the
        // generator seed and the codecs: growth is a storage regression on
        // any machine (this is the memory-footprint gate of the issue).
        let cur = with("scale10_store_bytes", "1200000")
            .replace("\"scale_cores\": 8", "\"scale_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("scale10_store_bytes")), "{v:?}");
        let cur = with("scale10_index_bytes", "600000");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("scale10_index_bytes")), "{v:?}");
        let cur = with("scale1_bytes_per_row", "60.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(
            v.iter().any(|s| s.contains("scale1_bytes_per_row")),
            "{v:?}"
        );
        let cur = with("scale10_rows", "40000");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("scale10_rows")), "{v:?}");
        // Within the 1.05x counter slack: fine.
        let cur = with("scale10_store_bytes", "1040000");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scale_naive_references_and_heap_model_are_informational() {
        // The `_naive` sizes exist to be compared against, not gated, and
        // the heap model is an accounting figure, not a budget.
        let cur = with("scale10_store_bytes_naive", "3000000");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        let cur = with("scale1_bytes_per_row_naive", "200.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        let cur = with("scale10_heap_bytes", "9000000");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scale_qps_follows_the_scale_cores_marker() {
        // The per-scale replay QPS is machine-dependent and follows the
        // scale tier's own comparability marker...
        let cur = with("qps_scale10", "60.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("qps_scale10")), "{v:?}");
        let cur = with("qps_scale10", "60.0").replace("\"scale_cores\": 8", "\"scale_cores\": 2");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
        // ...not the serve marker: a serve-core mismatch alone does not
        // excuse a scale-tier throughput collapse.
        let cur = with("qps_scale10", "60.0").replace("\"serve_cores\": 8", "\"serve_cores\": 2");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("qps_scale10")), "{v:?}");
    }

    #[test]
    fn scale_build_time_gates_like_wall_clock() {
        let cur = with("scale10_build_ms", "700.0");
        let v = check_regression(BASE, &cur, CheckConfig::default()).unwrap();
        assert!(v.iter().any(|s| s.contains("scale10_build_ms")), "{v:?}");
        // Within the 1.5x wall gate: fine.
        let cur = with("scale10_build_ms", "550.0");
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scale_keys_excused_without_scale_section() {
        // A --check run without --scale emits no scale keys; the tier goes
        // informational instead of reporting every key missing.
        let start = BASE.find(",\n  \"scale\"").unwrap();
        let end = BASE.rfind('}').unwrap();
        let cur = format!("{}\n{}", &BASE[..start], &BASE[end..]);
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn check_without_serve_section_passes() {
        // A --check run without --serve emits no serve keys at all; the
        // serve metrics go informational instead of reporting "missing".
        let start = BASE.find(",\n  \"serve\"").unwrap();
        let end = BASE.rfind('}').unwrap();
        let cur = format!("{}\n{}", &BASE[..start], &BASE[end..]);
        assert!(check_regression(BASE, &cur, CheckConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn profile_mismatch_is_incomparable() {
        let cur = BASE.replace("\"profile\": \"quick\"", "\"profile\": \"full\"");
        assert!(check_regression(BASE, &cur, CheckConfig::default()).is_err());
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Nearest rank: ⌈0.5·100⌉ = rank 50 = element 49 (the old
        // round(q·(n-1)) formula said 50.0 here).
        assert_eq!(percentile(&xs, 0.5), 49.0);
        assert_eq!(percentile(&xs, 0.99), 98.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn percentile_uses_nearest_rank_on_small_even_samples() {
        // The cases that distinguish nearest-rank from the old rounded
        // interpolation. n=4, q=0.5: ⌈2⌉ = rank 2 = 20.0; the old formula
        // rounded 0.5·3 = 1.5 up to index 2 = 30.0, overstating the median.
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.5), 20.0);
        // n=2, q=0.25: ⌈0.5⌉ = rank 1; the old formula also said index 0,
        // but n=2 q=0.75 diverged: ⌈1.5⌉ = rank 2 = 8.0 vs round(0.75) = 1.
        let xs = [5.0, 8.0];
        assert_eq!(percentile(&xs, 0.25), 5.0);
        assert_eq!(percentile(&xs, 0.75), 8.0);
        // Endpoints clamp: q=0 is the minimum (rank clamps up to 1), q=1
        // the maximum, and a singleton answers every quantile.
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
        // A tail quantile on a tiny sample is the max, not an
        // out-of-bounds rank.
        assert_eq!(percentile(&xs, 0.99), 40.0);
    }
}

// ---------------------------------------------------------------------------
// Chapter 5 helpers: Freebase-scale fixtures and query sampling.
// ---------------------------------------------------------------------------

use keybridge_datagen::{FreebaseConfig, FreebaseDataset};
use keybridge_freeq::SchemaOntology;
use keybridge_relstore::TableId;
use rand::rngs::StdRng;
use rand::Rng;

/// A Freebase-scale fixture: flat schema, index, and the domain ontology.
pub struct FreebaseFixture {
    pub fb: FreebaseDataset,
    pub index: InvertedIndex,
    pub ontology: SchemaOntology,
}

/// Build a Freebase-like fixture of the given shape.
pub fn freebase_fixture(
    domains: usize,
    types_per_domain: usize,
    topics: usize,
    seed: u64,
) -> FreebaseFixture {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        seed,
        domains,
        types_per_domain,
        topics,
        rows_per_table: 25,
        scale: 1.0,
    })
    .expect("generation succeeds");
    let index = InvertedIndex::build(&fb.db);
    let domain_tables: Vec<(String, Vec<TableId>)> = fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let ontology = SchemaOntology::from_domains(&domain_tables);
    FreebaseFixture {
        fb,
        index,
        ontology,
    }
}

impl FreebaseFixture {
    /// Sample a keyword query with ground truth: `n_keywords` keywords, each
    /// drawn from the `name` of a random row of a random type table; the
    /// intended binding of keyword `i` is that table. Retries until every
    /// keyword is ambiguous (occurs in ≥ 2 attributes).
    pub fn sample_query(
        &self,
        n_keywords: usize,
        rng: &mut StdRng,
    ) -> Option<(Vec<String>, Vec<TableId>)> {
        'outer: for _ in 0..200 {
            let mut keywords = Vec::with_capacity(n_keywords);
            let mut targets = Vec::with_capacity(n_keywords);
            for _ in 0..n_keywords {
                let d = &self.fb.domains[rng.gen_range(0..self.fb.domains.len())];
                let t = d.tables[rng.gen_range(0..d.tables.len())];
                let store = self.fb.db.table(t);
                if store.is_empty() {
                    continue 'outer;
                }
                let row = keybridge_relstore::RowId(rng.gen_range(0..store.len() as u32));
                let name = store.row(row)[1].as_text().unwrap_or("");
                let Some(tok) = name.split(' ').next().filter(|s| !s.is_empty()) else {
                    continue 'outer;
                };
                if self.index.attrs_containing(tok).len() < 2 {
                    continue 'outer;
                }
                keywords.push(tok.to_owned());
                targets.push(t);
            }
            return Some((keywords, targets));
        }
        None
    }
}
