//! Open-loop load harness for the serving layer.
//!
//! The closed-loop replay ([`crate::replay_serve`]) measures latency from
//! *send* to reply with clients that wait for each reply before sending the
//! next request. When the service slows down, those clients slow down with
//! it — the arrival rate adapts to the thing being measured, and the
//! latency a stalled request *would* have seen is simply never sampled.
//! That is coordinated omission, and it makes closed-loop percentiles a
//! systematic underestimate of what users at a fixed offered rate
//! experience.
//!
//! This module drives the service open-loop instead: a seeded arrival
//! schedule fixes *when* each request is offered before the run starts, the
//! dispatcher fires each request at its scheduled instant whether or not
//! earlier ones completed, and every latency is measured from the
//! *scheduled arrival*, so time spent queueing behind a slow service counts
//! against the service. [`sweep_capacity`] ladders the offered rate upward
//! until the SLO breaks and reports the knee: the highest rate the service
//! sustains with its p95 under the SLO and its failure/timeout rate under
//! the ceiling.

use keybridge_core::{
    DiversifyOptions, KeywordQuery, SearchService, SearchSnapshot, ServeRequests,
};
use keybridge_relstore::RowBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What one scheduled operation asks of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMode {
    /// Plain top-k search (`submit_timed`, async).
    Search,
    /// Diversified top-k (`submit_diversified_timed`, async).
    Diversified,
    /// A construction-session burst: open, read answers, close (sync).
    Session,
    /// One live insert batch (sync, order-preserving).
    Ingest,
}

/// One slot of an arrival schedule: fire `mode` with argument `arg`
/// (query index, or batch index for ingest) at `at` seconds from run start.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOp {
    pub at: f64,
    pub mode: OpMode,
    pub arg: usize,
}

/// Relative weights of the traffic mix. The default skews heavily toward
/// plain search, the dominant serving mode, with a trickle of diversified
/// queries, session bursts, and live writes.
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    pub search: u32,
    pub diversified: u32,
    pub session: u32,
    pub ingest: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            search: 90,
            diversified: 4,
            session: 4,
            ingest: 2,
        }
    }
}

impl MixWeights {
    fn total(&self) -> u32 {
        self.search + self.diversified + self.session + self.ingest
    }

    /// Map a draw in `[0, total)` onto a mode (cumulative ranges, in field
    /// order).
    fn pick(&self, w: u32) -> OpMode {
        if w < self.search {
            OpMode::Search
        } else if w < self.search + self.diversified {
            OpMode::Diversified
        } else if w < self.search + self.diversified + self.session {
            OpMode::Session
        } else {
            OpMode::Ingest
        }
    }
}

/// Per-mode operation counts of a schedule. Pure functions of the seed and
/// mix — rate-independent — so CI gates them strictly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCounts {
    pub search: usize,
    pub diversified: usize,
    pub session: usize,
    pub ingest: usize,
}

impl ModeCounts {
    pub fn of(ops: &[OpenLoopOp]) -> ModeCounts {
        let mut c = ModeCounts::default();
        for op in ops {
            match op.mode {
                OpMode::Search => c.search += 1,
                OpMode::Diversified => c.diversified += 1,
                OpMode::Session => c.session += 1,
                OpMode::Ingest => c.ingest += 1,
            }
        }
        c
    }
}

/// Build a seeded Poisson arrival schedule of `n_ops` operations at
/// `target_rps`. The random draw sequence is *rate-independent*: every op
/// draws one unit-rate exponential interarrival (scaled by `target_rps`
/// after the draw), one mix weight, and one query index, so two schedules
/// with the same seed differ only in their timestamps — the op/mode/query
/// sequence, and hence every [`ModeCounts`] field, is identical at every
/// rung of a sweep. Ingest slots consume insert batches in schedule order
/// (prefix consistency); once `n_batches` are spent, further ingest draws
/// degrade to plain searches.
pub fn openloop_schedule(
    seed: u64,
    n_ops: usize,
    target_rps: f64,
    mix: MixWeights,
    n_queries: usize,
    n_batches: usize,
) -> Vec<OpenLoopOp> {
    assert!(target_rps > 0.0, "offered rate must be positive");
    assert!(n_queries > 0, "schedule needs a query pool");
    let total = mix.total();
    assert!(total > 0, "mix weights must not all be zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut next_batch = 0usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let u: f64 = rng.gen();
        // Inverse-CDF exponential; 1-u keeps the argument of ln positive.
        t += -(1.0 - u).ln() / target_rps;
        let w = rng.gen_range(0..total);
        let q = rng.gen_range(0..n_queries);
        let (mode, arg) = match mix.pick(w) {
            OpMode::Ingest if next_batch < n_batches => {
                next_batch += 1;
                (OpMode::Ingest, next_batch - 1)
            }
            OpMode::Ingest => (OpMode::Search, q),
            m => (m, q),
        };
        ops.push(OpenLoopOp { at: t, mode, arg });
    }
    ops
}

/// FIFO multi-server queue simulation in virtual time: each of the sorted
/// `arrivals` takes `service_time` on the earliest-free of `servers`
/// identical servers, and its latency is completion minus arrival — the
/// open-loop definition, queueing delay included. This is the analytic
/// reference the virtual-time tests compare measured open-loop latencies
/// against.
pub fn queue_latencies(arrivals: &[f64], service_time: f64, servers: usize) -> Vec<f64> {
    assert!(servers >= 1, "need at least one server");
    let mut free = vec![0.0f64; servers];
    arrivals
        .iter()
        .map(|&a| {
            let idx = free
                .iter()
                .enumerate()
                .min_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let start = a.max(free[idx]);
            free[idx] = start + service_time;
            free[idx] - a
        })
        .collect()
}

/// Knobs of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Service worker threads.
    pub workers: usize,
    /// Top-k for plain searches.
    pub k: usize,
    /// Diversified-mode options.
    pub div: DiversifyOptions,
    /// Interpretation window of a session burst.
    pub session_window: usize,
    /// Answers pulled per session burst.
    pub session_limit: usize,
    /// Client threads executing the synchronous modes (session bursts).
    pub sync_clients: usize,
    /// A completed request slower than this (from scheduled arrival) counts
    /// as a timeout against the SLO failure ceiling.
    pub timeout_ms: f64,
    /// Testing seam: replace every *search* op's work with a fixed sleep of
    /// this length on the serving worker, making the service time a known
    /// constant the virtual-time tests can predict queueing from.
    pub inject_sleep: Option<Duration>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            workers: 2,
            k: 10,
            div: DiversifyOptions::default(),
            session_window: 10,
            session_limit: 5,
            sync_clients: 2,
            timeout_ms: 500.0,
            inject_sleep: None,
        }
    }
}

/// Outcome of one open-loop run at a fixed offered rate.
#[derive(Debug, Clone)]
pub struct OpenLoopRun {
    /// Operations the schedule offered.
    pub offered: usize,
    /// Operations that completed successfully (timeouts included — they
    /// finished, just late).
    pub completed: usize,
    /// Operations that errored or whose reply was lost.
    pub failures: usize,
    /// Completed operations slower than `timeout_ms` from scheduled
    /// arrival.
    pub timeouts: usize,
    /// Completed operations per second of wall-clock.
    pub achieved_rps: f64,
    /// Latency percentiles from *scheduled arrival* to completion, ms.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Per-mode counts of the schedule that was offered.
    pub counts: ModeCounts,
    /// The full sorted latency sample, ms (for dominance tests and sweep
    /// curve dumps).
    pub latencies_ms: Vec<f64>,
}

/// A sync-mode job handed to a client thread.
enum SyncJob {
    Session { at: f64, arg: usize },
    Ingest { at: f64, arg: usize },
}

/// What one client thread (or the ticket collector) accumulated.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    failures: usize,
}

fn wait_until(t0: Instant, at: f64) {
    loop {
        let now = t0.elapsed().as_secs_f64();
        if now >= at {
            return;
        }
        let remain = at - now;
        if remain > 0.001 {
            std::thread::sleep(Duration::from_secs_f64(remain - 0.0005));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Drive one open-loop replay of `ops` against `service` — any
/// implementation of the unified [`ServeRequests`] seam, the single-shard
/// service and the sharded scatter-gather router alike. The dispatcher
/// fires every operation at its scheduled instant regardless of whether
/// earlier ones completed — if the service falls behind, requests pile up
/// in its queue and their measured latency (scheduled arrival →
/// completion) grows to show it. Async modes (search, diversified) are
/// submitted fire-and-forget with worker-side completion stamps; sync
/// modes run on a small client pool (session bursts, served through
/// [`ServeRequests::session_burst`]) and a dedicated writer thread
/// (ingest, preserving batch order), where channel queueing time counts
/// toward latency exactly like service queueing.
pub fn run_open_loop<S: ServeRequests + Sync>(
    service: &S,
    queries: &[Vec<String>],
    batches: &[RowBatch],
    ops: &[OpenLoopOp],
    cfg: &OpenLoopConfig,
) -> OpenLoopRun {
    let counts = ModeCounts::of(ops);
    let (session_tx, session_rx) = channel::<SyncJob>();
    let session_rx = Mutex::new(session_rx);
    let (ingest_tx, ingest_rx) = channel::<SyncJob>();

    let run_sync = |job: SyncJob, t0: Instant, tally: &mut Tally| {
        let (at, ok) = match job {
            SyncJob::Session { at, arg } => {
                let q = KeywordQuery::from_terms(queries[arg].clone());
                (
                    at,
                    service.session_burst(&q, cfg.session_window, cfg.session_limit),
                )
            }
            SyncJob::Ingest { at, arg } => (at, service.ingest_batch(&batches[arg]).is_ok()),
        };
        if ok {
            tally
                .latencies_ms
                .push((t0.elapsed().as_secs_f64() - at) * 1e3);
        } else {
            tally.failures += 1;
        }
    };

    let t0 = Instant::now();
    let (mut tallies, wall) = std::thread::scope(|scope| {
        let session_clients: Vec<_> = (0..cfg.sync_clients.max(1))
            .map(|_| {
                let session_rx = &session_rx;
                let run_sync = &run_sync;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    loop {
                        let job = {
                            let rx = session_rx.lock().unwrap();
                            rx.recv()
                        };
                        match job {
                            Ok(j) => run_sync(j, t0, &mut tally),
                            Err(_) => return tally,
                        }
                    }
                })
            })
            .collect();
        let writer = {
            let run_sync = &run_sync;
            scope.spawn(move || {
                let mut tally = Tally::default();
                for job in ingest_rx {
                    run_sync(job, t0, &mut tally);
                }
                tally
            })
        };

        // The dispatcher: fire each op at its scheduled instant.
        let mut pending_search = Vec::new();
        let mut pending_div = Vec::new();
        for op in ops {
            wait_until(t0, op.at);
            match op.mode {
                OpMode::Search => {
                    let ticket = match cfg.inject_sleep {
                        Some(d) => service.submit_sleeping(d),
                        None => service
                            .submit_timed(KeywordQuery::from_terms(queries[op.arg].clone()), cfg.k),
                    };
                    pending_search.push((op.at, ticket));
                }
                OpMode::Diversified => {
                    let ticket = service.submit_diversified_timed(
                        KeywordQuery::from_terms(queries[op.arg].clone()),
                        cfg.div,
                    );
                    pending_div.push((op.at, ticket));
                }
                OpMode::Session => {
                    let _ = session_tx.send(SyncJob::Session {
                        at: op.at,
                        arg: op.arg,
                    });
                }
                OpMode::Ingest => {
                    let _ = ingest_tx.send(SyncJob::Ingest {
                        at: op.at,
                        arg: op.arg,
                    });
                }
            }
        }
        drop(session_tx);
        drop(ingest_tx);

        // Collect the async completions: latency is worker-stamped
        // completion minus *scheduled* arrival, so queueing before a worker
        // picked the job up is charged to the service.
        let mut tally = Tally::default();
        for (at, ticket) in pending_search {
            match ticket.wait() {
                Some(r) if r.result.is_ok() => tally
                    .latencies_ms
                    .push(((r.completed_at - t0).as_secs_f64() - at) * 1e3),
                _ => tally.failures += 1,
            }
        }
        for (at, ticket) in pending_div {
            match ticket.wait() {
                Some(r) if r.result.is_ok() => tally
                    .latencies_ms
                    .push(((r.completed_at - t0).as_secs_f64() - at) * 1e3),
                _ => tally.failures += 1,
            }
        }

        let mut tallies: Vec<Tally> = session_clients
            .into_iter()
            .map(|h| h.join().expect("session client"))
            .collect();
        tallies.push(writer.join().expect("ingest writer"));
        tallies.push(tally);
        (tallies, t0.elapsed().as_secs_f64())
    });

    let mut latencies_ms = Vec::new();
    let mut failures = 0usize;
    for t in &mut tallies {
        latencies_ms.append(&mut t.latencies_ms);
        failures += t.failures;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let timeouts = latencies_ms.iter().filter(|&&l| l > cfg.timeout_ms).count();
    let completed = latencies_ms.len();
    OpenLoopRun {
        offered: ops.len(),
        completed,
        failures,
        timeouts,
        achieved_rps: completed as f64 / wall.max(1e-12),
        p50_ms: crate::percentile(&latencies_ms, 0.50),
        p95_ms: crate::percentile(&latencies_ms, 0.95),
        p99_ms: crate::percentile(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(f64::NAN),
        counts,
        latencies_ms,
    }
}

/// The service-level objective a sweep rung must hold.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// p95 latency ceiling (from scheduled arrival), ms.
    pub p95_ms: f64,
    /// Ceiling on (failures + timeouts) / offered.
    pub max_failure_rate: f64,
}

/// Knobs of a capacity sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Schedule seed — shared by every rung, so all rungs replay the same
    /// op/mode/query sequence at different speeds.
    pub seed: u64,
    /// Operations per rung.
    pub n_ops: usize,
    /// Offered rate of the first rung.
    pub start_rps: f64,
    /// Multiplicative rung spacing. 1.25 keeps one rung of quantization
    /// noise inside the regression gate's 1.5x allowance.
    pub growth: f64,
    /// Rung ceiling (the sweep also stops at the first SLO violation).
    pub max_rungs: usize,
    pub mix: MixWeights,
    pub slo: SloConfig,
    pub open: OpenLoopConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 23,
            n_ops: 240,
            start_rps: 400.0,
            growth: 1.25,
            max_rungs: 14,
            mix: MixWeights::default(),
            slo: SloConfig {
                p95_ms: 20.0,
                max_failure_rate: 0.02,
            },
            open: OpenLoopConfig::default(),
        }
    }
}

/// One rung of a sweep: the offered rate, the run, and the SLO verdict.
#[derive(Debug, Clone)]
pub struct SweepRung {
    pub target_rps: f64,
    pub passed: bool,
    pub run: OpenLoopRun,
}

/// What a capacity sweep found.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Every rung driven, in ladder order.
    pub rungs: Vec<SweepRung>,
    /// The knee: the highest offered rate whose rung held the SLO (0 when
    /// even the first rung failed).
    pub capacity_rps: f64,
    /// p95 at the knee rung (the first rung's p95 when none passed, so the
    /// snapshot never records NaN).
    pub p95_at_capacity_ms: f64,
    /// Per-mode schedule counts — identical at every rung by construction.
    pub counts: ModeCounts,
}

/// Ladder the offered rate from `start_rps` by `growth` per rung until the
/// SLO breaks (or `max_rungs`), each rung on a fresh cold service over
/// `snapshot`, and report the capacity knee. Because each rung boots its
/// own service, ingest batches consumed by one rung do not leak into the
/// next — every rung sees the same initial epoch.
pub fn sweep_capacity(
    snapshot: &Arc<SearchSnapshot>,
    queries: &[Vec<String>],
    batches: &[RowBatch],
    cfg: &SweepConfig,
) -> SweepOutcome {
    assert!(cfg.growth > 1.0, "a sweep must ladder upward");
    // One short unrecorded warm-up rung: the first requests of a fresh
    // process pay page-cache and allocator cold-start costs that have
    // nothing to do with the offered rate, and a cold first rung is the
    // difference between "knee at the ladder top" and "knee at rung one"
    // on a noisy box.
    {
        let warm = openloop_schedule(
            cfg.seed,
            (cfg.n_ops / 4).max(1),
            cfg.start_rps,
            cfg.mix,
            queries.len(),
            batches.len(),
        );
        let service = SearchService::start(Arc::clone(snapshot), cfg.open.workers);
        let _ = run_open_loop(&service, queries, batches, &warm, &cfg.open);
    }
    let mut rungs: Vec<SweepRung> = Vec::new();
    let mut capacity_rps = 0.0f64;
    let mut p95_at_capacity_ms = f64::NAN;
    let mut counts = ModeCounts::default();
    let mut rps = cfg.start_rps;
    for _ in 0..cfg.max_rungs {
        let ops = openloop_schedule(
            cfg.seed,
            cfg.n_ops,
            rps,
            cfg.mix,
            queries.len(),
            batches.len(),
        );
        counts = ModeCounts::of(&ops);
        let drive = || {
            let service = SearchService::start(Arc::clone(snapshot), cfg.open.workers);
            run_open_loop(&service, queries, batches, &ops, &cfg.open)
        };
        let slo_ok = |run: &OpenLoopRun| {
            let failure_rate = (run.failures + run.timeouts) as f64 / run.offered.max(1) as f64;
            run.p95_ms <= cfg.slo.p95_ms && failure_rate <= cfg.slo.max_failure_rate
        };
        let mut run = drive();
        let mut passed = slo_ok(&run);
        if !passed {
            // A failure ends the ladder, so it must be confirmed: one noisy
            // window (a CPU steal mid-rung) should not set the knee. Genuine
            // saturation reproduces on the rerun; a transient does not.
            let rerun = drive();
            if slo_ok(&rerun) {
                run = rerun;
                passed = true;
            }
        }
        if passed {
            capacity_rps = rps;
            p95_at_capacity_ms = run.p95_ms;
        } else if rungs.is_empty() {
            p95_at_capacity_ms = run.p95_ms;
        }
        rungs.push(SweepRung {
            target_rps: rps,
            passed,
            run,
        });
        if !rungs.last().unwrap().passed {
            break;
        }
        rps *= cfg.growth;
    }
    SweepOutcome {
        rungs,
        capacity_rps,
        p95_at_capacity_ms,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_rate_independent() {
        let mix = MixWeights::default();
        let a = openloop_schedule(42, 200, 100.0, mix, 16, 3);
        let b = openloop_schedule(42, 200, 100.0, mix, 16, 3);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.arg, y.arg);
        }
        // Doubling the rate halves every timestamp but leaves the
        // op/mode/argument sequence — and hence the per-mode counts —
        // untouched.
        let fast = openloop_schedule(42, 200, 200.0, mix, 16, 3);
        for (x, y) in a.iter().zip(&fast) {
            assert!((x.at - 2.0 * y.at).abs() < 1e-9);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.arg, y.arg);
        }
        assert_eq!(ModeCounts::of(&a), ModeCounts::of(&fast));
    }

    #[test]
    fn schedule_counts_sum_and_ingest_args_are_ordered() {
        let ops = openloop_schedule(7, 500, 50.0, MixWeights::default(), 8, 4);
        let c = ModeCounts::of(&ops);
        assert_eq!(c.search + c.diversified + c.session + c.ingest, 500);
        assert!(c.search > c.diversified, "mix skews toward search");
        // Ingest slots consume batches 0..n in schedule order and never
        // exceed the plan.
        let ingest_args: Vec<usize> = ops
            .iter()
            .filter(|o| o.mode == OpMode::Ingest)
            .map(|o| o.arg)
            .collect();
        assert_eq!(ingest_args, (0..ingest_args.len()).collect::<Vec<_>>());
        assert!(c.ingest <= 4);
        // Arrivals are non-decreasing (exponential gaps are positive).
        for w in ops.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn mix_pick_covers_cumulative_ranges() {
        let mix = MixWeights {
            search: 2,
            diversified: 1,
            session: 1,
            ingest: 1,
        };
        let picks: Vec<OpMode> = (0..mix.total()).map(|w| mix.pick(w)).collect();
        assert_eq!(
            picks,
            vec![
                OpMode::Search,
                OpMode::Search,
                OpMode::Diversified,
                OpMode::Session,
                OpMode::Ingest
            ]
        );
    }

    #[test]
    fn queue_simulation_matches_hand_computed_mm1_and_mm2() {
        // One server, service 3, arrivals every 1: the backlog grows by 2
        // per arrival — completion times 3, 6, 9, 12.
        let lat = queue_latencies(&[0.0, 1.0, 2.0, 3.0], 3.0, 1);
        assert_eq!(lat, vec![3.0, 5.0, 7.0, 9.0]);
        // Two servers absorb more: completions 3, 4, 6, 7.
        let lat = queue_latencies(&[0.0, 1.0, 2.0, 3.0], 3.0, 2);
        assert_eq!(lat, vec![3.0, 3.0, 4.0, 4.0]);
        // An idle system serves at the service time exactly.
        let lat = queue_latencies(&[0.0, 10.0, 20.0], 3.0, 1);
        assert_eq!(lat, vec![3.0, 3.0, 3.0]);
    }
}
