//! End-to-end integration tests across the workspace: generated data →
//! index → templates → interpretations → ranking → construction →
//! diversification → execution.

use keybridge::core::{
    execute_interpretation, render_natural, render_sql, Interpreter, InterpreterConfig,
    KeywordQuery, TemplateCatalog, TemplatePrior,
};
use keybridge::datagen::{
    FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, Workload, WorkloadConfig,
    YagoConfig, YagoOntology,
};
use keybridge::divq::{diversify, DivItem, DiversifyConfig};
use keybridge::freeq::{
    FreeQSession, FreeQSessionConfig, LazyExplorer, SchemaOntology, TraversalConfig,
};
use keybridge::index::InvertedIndex;
use keybridge::iqp::{SessionConfig, SimulatedUser};
use keybridge::relstore::{ExecOptions, TableId};
use keybridge::yagof::{combine, evaluate_matching, match_categories, MatchConfig};

struct Pipeline {
    data: ImdbDataset,
    index: InvertedIndex,
    catalog: TemplateCatalog,
}

fn pipeline() -> Pipeline {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).expect("medium schema");
    Pipeline {
        data,
        index,
        catalog,
    }
}

#[test]
fn keyword_to_results_end_to_end() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    // Take a real actor's surname so results are guaranteed.
    let name = p.data.db.table(p.data.actor).row(keybridge::relstore::RowId(0))[1]
        .as_text()
        .unwrap()
        .to_owned();
    let surname = name.split(' ').nth(1).unwrap();
    let query = KeywordQuery::parse(p.index.tokenizer(), surname);
    let ranked = interp.ranked_interpretations(&query);
    assert!(!ranked.is_empty(), "no interpretations for {surname}");

    // Every interpretation is complete, minimal, and renderable; the most
    // probable one returns results.
    for s in &ranked {
        assert!(s.interpretation.is_complete(&query));
        assert!(s.interpretation.is_minimal(&p.catalog));
        assert!(!render_natural(&p.data.db, &p.catalog, &s.interpretation).is_empty());
        assert!(render_sql(&p.data.db, &p.catalog, &s.interpretation).starts_with("SELECT"));
    }
    let top = execute_interpretation(
        &p.data.db,
        &p.index,
        &p.catalog,
        &ranked[0].interpretation,
        ExecOptions::default(),
    )
    .expect("execution succeeds");
    assert!(!top.is_empty(), "top interpretation returned no results");
}

#[test]
fn workload_construction_always_retains_intent() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    let workload = Workload::imdb(
        &p.data,
        WorkloadConfig {
            seed: 123,
            n_queries: 30,
            mc_fraction: 0.5,
        },
    );
    let mut evaluated = 0;
    for q in &workload.queries {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interp.ranked_interpretations(&query);
        let user = SimulatedUser {
            db: &p.data.db,
            catalog: &p.catalog,
            intent: keybridge::core::IntentDescription {
                bindings: q
                    .intent
                    .bindings
                    .iter()
                    .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                    .collect(),
                tables: q.intent.tables.clone(),
            },
        };
        if let Some(outcome) = user.run(&ranked, SessionConfig::default()) {
            assert!(outcome.target_retained, "lost intent for {:?}", q.keywords);
            evaluated += 1;
        }
    }
    assert!(evaluated >= 10, "too few evaluable queries: {evaluated}");
}

#[test]
fn diversified_results_cover_more_tuples() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    // A common first name is maximally ambiguous.
    let query = KeywordQuery::from_terms(vec!["tom".into()]);
    let mut ranked = interp.ranked_interpretations(&query);
    ranked.truncate(25);
    if ranked.len() < 6 {
        return; // not enough ambiguity at tiny scale
    }
    let items: Vec<DivItem> = ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(&p.catalog).into_iter().collect(),
        })
        .collect();
    let k = 5;
    let div = diversify(&items, DiversifyConfig { lambda: 0.1, k });

    let keys_of = |idx: usize| {
        execute_interpretation(
            &p.data.db,
            &p.index,
            &p.catalog,
            &ranked[idx].interpretation,
            ExecOptions::default(),
        )
        .map(|r| r.keys)
        .unwrap_or_default()
    };
    let mut rank_cover = std::collections::BTreeSet::new();
    for i in 0..k {
        rank_cover.extend(keys_of(i));
    }
    let mut div_cover = std::collections::BTreeSet::new();
    for &i in &div {
        div_cover.extend(keys_of(i));
    }
    // Diversification must not cover fewer distinct tuples.
    assert!(
        div_cover.len() >= rank_cover.len(),
        "diversified coverage {} < ranked coverage {}",
        div_cover.len(),
        rank_cover.len()
    );
}

#[test]
fn freebase_ontology_beats_plain_options() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 12,
        types_per_domain: 8,
        topics: 1500,
        rows_per_table: 20,
        seed: 77,
    })
    .unwrap();
    let index = InvertedIndex::build(&fb.db);
    let domains: Vec<(String, Vec<TableId>)> = fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let ontology = SchemaOntology::from_domains(&domains);

    // The most widespread keyword.
    let mut best = (String::new(), 0usize);
    for (_, row) in fb.db.table(fb.topic).rows().take(300) {
        for tok in row[1].as_text().unwrap_or("").split(' ') {
            let n = index.attrs_containing(tok).len();
            if n > best.1 {
                best = (tok.to_owned(), n);
            }
        }
    }
    let query = KeywordQuery::from_terms(vec![best.0.clone(), best.0]);
    let explorer = LazyExplorer::new(&fb.db, &index, TraversalConfig::default());
    let tops = explorer.top_interpretations(&query);
    if tops.len() < 20 {
        return;
    }
    let target: Vec<TableId> = tops[tops.len() - 1].bindings.iter().map(|a| a.table).collect();
    let plain = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
        .run_with_target(&target)
        .unwrap();
    let onto = FreeQSession::new(Some(&ontology), tops, FreeQSessionConfig::default())
        .run_with_target(&target)
        .unwrap();
    assert!(plain.target_retained && onto.target_retained);
    assert!(
        onto.steps <= plain.steps,
        "ontology {} > plain {}",
        onto.steps,
        plain.steps
    );
}

#[test]
fn yago_matching_recovers_gold_end_to_end() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 10,
        types_per_domain: 6,
        topics: 1200,
        rows_per_table: 20,
        seed: 31,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let matches = match_categories(&yago, &fb, MatchConfig::default());
    let quality = evaluate_matching(&matches, &yago.gold);
    assert!(quality.precision > 0.6, "precision {quality:?}");
    assert!(quality.recall > 0.4, "recall {quality:?}");
    let yf = combine(&matches);
    let stats = yf.stats(&yago, &fb);
    assert_eq!(stats.matched_categories, matches.len());
    assert!(stats.covered_instances > 0);
}
