//! End-to-end integration tests across the workspace: generated data →
//! index → templates → interpretations → ranking → construction →
//! diversification → execution.

use keybridge::core::{
    execute_interpretation, render_natural, render_sql, GenerationStrategy, Interpreter,
    InterpreterConfig, KeywordQuery, RankedAnswer, TemplateCatalog,
};
use keybridge::datagen::{
    FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, LyricsConfig, LyricsDataset,
    Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::divq::{diversify, DivItem, DiversifyConfig};
use keybridge::freeq::{
    FreeQSession, FreeQSessionConfig, LazyExplorer, SchemaOntology, TraversalConfig,
};
use keybridge::index::{InvertedIndex, Tokenizer};
use keybridge::iqp::{SessionConfig, SimulatedUser};
use keybridge::relstore::{Database, ExecOptions, ExecStrategy, TableId};
use keybridge::yagof::{combine, evaluate_matching, match_categories, MatchConfig};

struct Pipeline {
    data: ImdbDataset,
    index: InvertedIndex,
    catalog: TemplateCatalog,
}

fn pipeline() -> Pipeline {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).expect("medium schema");
    Pipeline {
        data,
        index,
        catalog,
    }
}

#[test]
fn keyword_to_results_end_to_end() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    // Take a real actor's surname so results are guaranteed.
    let name = p
        .data
        .db
        .table(p.data.actor)
        .row(keybridge::relstore::RowId(0))[1]
        .as_text()
        .unwrap()
        .to_owned();
    let surname = name.split(' ').nth(1).unwrap();
    let query = KeywordQuery::parse(p.index.tokenizer(), surname);
    let ranked = interp.ranked_interpretations(&query);
    assert!(!ranked.is_empty(), "no interpretations for {surname}");

    // Every interpretation is complete, minimal, and renderable; the most
    // probable one returns results.
    for s in &ranked {
        assert!(s.interpretation.is_complete(&query));
        assert!(s.interpretation.is_minimal(&p.catalog));
        assert!(!render_natural(&p.data.db, &p.catalog, &s.interpretation).is_empty());
        assert!(render_sql(&p.data.db, &p.catalog, &s.interpretation).starts_with("SELECT"));
    }
    let top = execute_interpretation(
        &p.data.db,
        &p.index,
        &p.catalog,
        &ranked[0].interpretation,
        ExecOptions::default(),
    )
    .expect("execution succeeds");
    assert!(!top.is_empty(), "top interpretation returned no results");
}

#[test]
fn workload_construction_always_retains_intent() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    let workload = Workload::imdb(
        &p.data,
        WorkloadConfig {
            seed: 123,
            n_queries: 30,
            mc_fraction: 0.5,
        },
    );
    let mut evaluated = 0;
    for q in &workload.queries {
        let query = KeywordQuery::from_terms(q.keywords.clone());
        let ranked = interp.ranked_interpretations(&query);
        let user = SimulatedUser {
            db: &p.data.db,
            catalog: &p.catalog,
            intent: keybridge::core::IntentDescription {
                bindings: q
                    .intent
                    .bindings
                    .iter()
                    .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                    .collect(),
                tables: q.intent.tables.clone(),
            },
        };
        if let Some(outcome) = user.run(&ranked, SessionConfig::default()) {
            assert!(outcome.target_retained, "lost intent for {:?}", q.keywords);
            evaluated += 1;
        }
    }
    assert!(evaluated >= 10, "too few evaluable queries: {evaluated}");
}

#[test]
fn diversified_results_cover_more_tuples() {
    let p = pipeline();
    let interp = Interpreter::new(
        &p.data.db,
        &p.index,
        &p.catalog,
        InterpreterConfig::default(),
    );
    // A common first name is maximally ambiguous.
    let query = KeywordQuery::from_terms(vec!["tom".into()]);
    let mut ranked = interp.ranked_interpretations(&query);
    ranked.truncate(25);
    if ranked.len() < 6 {
        return; // not enough ambiguity at tiny scale
    }
    let items: Vec<DivItem> = ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(&p.catalog).into_iter().collect(),
        })
        .collect();
    let k = 5;
    let div = diversify(&items, DiversifyConfig { lambda: 0.1, k });

    let keys_of = |idx: usize| {
        execute_interpretation(
            &p.data.db,
            &p.index,
            &p.catalog,
            &ranked[idx].interpretation,
            ExecOptions::default(),
        )
        .map(|r| r.keys)
        .unwrap_or_default()
    };
    let mut rank_cover = std::collections::BTreeSet::new();
    for i in 0..k {
        rank_cover.extend(keys_of(i));
    }
    let mut div_cover = std::collections::BTreeSet::new();
    for &i in &div {
        div_cover.extend(keys_of(i));
    }
    // Diversification must not cover fewer distinct tuples.
    assert!(
        div_cover.len() >= rank_cover.len(),
        "diversified coverage {} < ranked coverage {}",
        div_cover.len(),
        rank_cover.len()
    );
}

#[test]
fn freebase_ontology_beats_plain_options() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 12,
        types_per_domain: 8,
        topics: 1500,
        rows_per_table: 20,
        seed: 77,
        scale: 1.0,
    })
    .unwrap();
    let index = InvertedIndex::build(&fb.db);
    let domains: Vec<(String, Vec<TableId>)> = fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let ontology = SchemaOntology::from_domains(&domains);

    // The most widespread keyword.
    let mut best = (String::new(), 0usize);
    for (_, row) in fb.db.table(fb.topic).rows().take(300) {
        for tok in row[1].as_text().unwrap_or("").split(' ') {
            let n = index.attrs_containing(tok).len();
            if n > best.1 {
                best = (tok.to_owned(), n);
            }
        }
    }
    let query = KeywordQuery::from_terms(vec![best.0.clone(), best.0]);
    let explorer = LazyExplorer::new(&fb.db, &index, TraversalConfig::default());
    let tops = explorer.top_interpretations(&query);
    if tops.len() < 20 {
        return;
    }
    let target: Vec<TableId> = tops[tops.len() - 1]
        .bindings
        .iter()
        .map(|a| a.table)
        .collect();
    let plain = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
        .run_with_target(&target)
        .unwrap();
    let onto = FreeQSession::new(Some(&ontology), tops, FreeQSessionConfig::default())
        .run_with_target(&target)
        .unwrap();
    assert!(plain.target_retained && onto.target_retained);
    assert!(
        onto.steps <= plain.steps,
        "ontology {} > plain {}",
        onto.steps,
        plain.steps
    );
}

#[test]
fn yago_matching_recovers_gold_end_to_end() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 10,
        types_per_domain: 6,
        topics: 1200,
        rows_per_table: 20,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let matches = match_categories(&yago, &fb, MatchConfig::default());
    let quality = evaluate_matching(&matches, &yago.gold);
    assert!(quality.precision > 0.6, "precision {quality:?}");
    assert!(quality.recall > 0.4, "recall {quality:?}");
    let yf = combine(&matches);
    let stats = yf.stats(&yago, &fb);
    assert_eq!(stats.matched_categories, matches.len());
    assert!(stats.covered_instances > 0);
}

// ---------------------------------------------------------------------------
// End-to-end golden tests: `answers_top_k` on seeded query logs, one per
// datagen fixture. Each run is double-checked against the independent
// oracle pipeline (exhaustive generation + naive nested-loop execution) and
// the top answer is snapshot-asserted, so generation *and* execution
// regressions are caught together.
// ---------------------------------------------------------------------------

/// The expected top answer of one golden query: interpretation log-score and
/// the answer's identifying `(table name, pk)` keys.
struct Snapshot {
    query: &'static [&'static str],
    answers: usize,
    top_score: f64,
    top_keys: &'static [(&'static str, i64)],
}

fn run_golden(
    name: &str,
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    snapshots: &[Snapshot],
) {
    let fast = Interpreter::new(db, index, catalog, InterpreterConfig::default());
    let oracle = Interpreter::new(
        db,
        index,
        catalog,
        InterpreterConfig {
            strategy: GenerationStrategy::Exhaustive,
            ..Default::default()
        },
    );
    for snap in snapshots {
        let q = KeywordQuery::from_terms(snap.query.iter().map(|s| s.to_string()).collect());
        let note = format!("{name} query {:?}", snap.query);
        let answers = fast.answers_top_k(&q, 5);

        // 1. Snapshot: answer count, top score, top keys.
        assert_eq!(answers.len(), snap.answers, "{note}: answer count drifted");
        let top = answers
            .first()
            .unwrap_or_else(|| panic!("{note}: no answers"));
        assert!(
            (top.log_score - snap.top_score).abs() < 1e-6,
            "{note}: top score drifted: {} vs {}",
            top.log_score,
            snap.top_score
        );
        let keys: Vec<(String, i64)> = top
            .keys
            .iter()
            .map(|k| (db.schema().table(k.table).name.clone(), k.pk))
            .collect();
        let want: Vec<(String, i64)> = snap
            .top_keys
            .iter()
            .map(|(t, pk)| (t.to_string(), *pk))
            .collect();
        assert_eq!(keys, want, "{note}: top answer keys drifted");

        // 2. Differential: the independent oracle pipeline agrees on every
        //    answer's interpretation, score, and key multiset.
        let (expect, _) = oracle.answers_top_k_with_opts(
            &q,
            5,
            ExecOptions {
                strategy: ExecStrategy::Naive,
                ..Default::default()
            },
        );
        assert_eq!(answers.len(), expect.len(), "{note}: oracle count");
        for (i, (a, b)) in answers.iter().zip(&expect).enumerate() {
            assert_eq!(a.interpretation, b.interpretation, "{note}: answer {i}");
            assert!(
                (a.log_score - b.log_score).abs() < 1e-12,
                "{note}: score {i}"
            );
        }
        let sorted_keys = |v: &[RankedAnswer]| {
            let mut ks: Vec<_> = v.iter().map(|a| a.keys.clone()).collect();
            ks.sort();
            ks
        };
        assert_eq!(
            sorted_keys(&answers),
            sorted_keys(&expect),
            "{note}: key multisets"
        );

        // 3. Structural invariants.
        for w in answers.windows(2) {
            assert!(w[0].log_score >= w[1].log_score, "{note}: not rank-ordered");
        }
    }
}

#[test]
fn golden_answers_imdb() {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
    // Sanity: the seeded query log is what the snapshots were taken from.
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 10,
            mc_fraction: 0.5,
        },
    );
    let logged: Vec<Vec<String>> = w
        .queries
        .iter()
        .take(4)
        .map(|q| q.keywords.clone())
        .collect();
    let snaps = [
        Snapshot {
            query: &["mary", "kriclafrio"],
            answers: 5,
            top_score: -9.568014816,
            top_keys: &[("actor", 40)],
        },
        Snapshot {
            query: &["ziawea", "moore"],
            answers: 5,
            top_score: -9.568014816,
            top_keys: &[("actor", 55)],
        },
        Snapshot {
            query: &["terminal"],
            answers: 5,
            top_score: -7.841240197,
            top_keys: &[("movie", 2)],
        },
        Snapshot {
            query: &["elena", "breasloutai", "nukro", "day"],
            answers: 5,
            top_score: -14.392320532,
            top_keys: &[("actor", 57), ("movie", 7)],
        },
    ];
    for (s, l) in snaps.iter().zip(&logged) {
        assert_eq!(
            &s.query.iter().map(|x| x.to_string()).collect::<Vec<_>>(),
            l,
            "query log drifted — regenerate the snapshots"
        );
    }
    run_golden("imdb", &data.db, &index, &catalog, &snaps);
}

#[test]
fn golden_answers_lyrics() {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 10,
            mc_fraction: 0.5,
        },
    );
    let logged: Vec<Vec<String>> = w
        .queries
        .iter()
        .take(4)
        .map(|q| q.keywords.clone())
        .collect();
    let snaps = [
        Snapshot {
            query: &["day"],
            answers: 5,
            top_score: -8.044438194,
            top_keys: &[("song", 15)],
        },
        Snapshot {
            query: &["mind", "night"],
            answers: 5,
            top_score: -9.614204199,
            top_keys: &[("song", 195)],
        },
        Snapshot {
            query: &["sliotrou", "houjoji"],
            answers: 5,
            top_score: -9.614204199,
            top_keys: &[("song", 38)],
        },
        Snapshot {
            query: &["wild", "soul"],
            answers: 5,
            top_score: -9.614204199,
            top_keys: &[("song", 143)],
        },
    ];
    for (s, l) in snaps.iter().zip(&logged) {
        assert_eq!(
            &s.query.iter().map(|x| x.to_string()).collect::<Vec<_>>(),
            l,
            "query log drifted — regenerate the snapshots"
        );
    }
    run_golden("lyrics", &data.db, &index, &catalog, &snaps);
}

#[test]
fn golden_answers_freebase() {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let index = InvertedIndex::build(&fb.db);
    let catalog = TemplateCatalog::enumerate(&fb.db, 2, 50_000).unwrap();
    // The seeded "query log": first tokens of the first topic names.
    let tok = Tokenizer::new();
    let mut logged = Vec::new();
    for i in 0..6u32 {
        let row = fb.db.table(fb.topic).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap());
        if !toks.is_empty() {
            logged.push(toks[0].clone());
        }
        if logged.len() >= 3 {
            break;
        }
    }
    assert_eq!(
        logged,
        vec!["tom", "light", "tadruste"],
        "topic log drifted"
    );
    let snaps = [
        Snapshot {
            query: &["tom"],
            answers: 5,
            top_score: -7.983303628,
            top_keys: &[("tv_producer", 163)],
        },
        Snapshot {
            query: &["light"],
            answers: 5,
            top_score: -8.923124857,
            top_keys: &[("film_producer", 28)],
        },
        Snapshot {
            query: &["tadruste"],
            answers: 5,
            top_score: -8.627660644,
            top_keys: &[("film_director", 17)],
        },
    ];
    run_golden("freebase", &fb.db, &index, &catalog, &snaps);
}

#[test]
fn golden_answers_yago() {
    // YAGO instances live in the Freebase universe; the golden queries pull
    // tokens from the generator's first gold-matched table.
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let gold_table = yago.gold[0].1;
    assert_eq!(
        fb.db.schema().table(gold_table).name,
        "location_director",
        "gold mapping drifted — regenerate the snapshots"
    );
    let index = InvertedIndex::build(&fb.db);
    let catalog = TemplateCatalog::enumerate(&fb.db, 2, 50_000).unwrap();
    let tok = Tokenizer::new();
    let mut logged = Vec::new();
    for i in 0..6u32 {
        if (i as usize) >= fb.db.table(gold_table).len() {
            break;
        }
        let row = fb.db.table(gold_table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap());
        if !toks.is_empty() {
            logged.push(toks[0].clone());
        }
        if logged.len() >= 2 {
            break;
        }
    }
    assert_eq!(logged, vec!["fly", "david"], "gold-table log drifted");
    let snaps = [
        Snapshot {
            query: &["fly"],
            answers: 3,
            top_score: -9.093750374,
            top_keys: &[("music_writer", 107)],
        },
        Snapshot {
            query: &["david"],
            answers: 5,
            top_score: -9.132216655,
            top_keys: &[("location_director", 304)],
        },
    ];
    run_golden("yago", &fb.db, &index, &catalog, &snaps);
}
