//! Differential correctness of the two new `SearchService` request modes:
//! warm, concurrent **diversified top-k** replies and **service-managed
//! construction sessions** must be *byte-identical* (bit-exact scores, same
//! atoms, same result keys, same tuple trees) to the cold offline oracles —
//! `divq::executed_div_pool` + `divq::diversify` and
//! `iqp::ConstructionSession` — on all four datagen fixtures, and a session
//! opened before an `ingest` must keep answering from its pinned epoch
//! after the swap.

use keybridge::core::{
    DiversifiedReply, DiversifyConfig, DiversifyOptions, InterpreterConfig, KeywordQuery,
    SearchService, SearchSnapshot, SessionConfig, SessionView, TemplateCatalog,
};
use keybridge::datagen::{
    holdout_plan, FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, IngestConfig,
    LyricsConfig, LyricsDataset, Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::divq::{diversify, executed_div_pool, DivExecOptions};
use keybridge::index::{InvertedIndex, Tokenizer};
use keybridge::iqp::ConstructionSession;
use std::sync::Arc;

/// Diversified-mode knobs of the whole suite. The small cap forces
/// per-interpretation truncation, so a warm cache hit carrying a *complete*
/// result must be cut back to exactly what a fresh capped run returns.
const POOL: usize = 12;
const CAP: usize = 5;
const DIV_CFG: DiversifyConfig = DiversifyConfig { lambda: 0.1, k: 4 };

const fn div_opts() -> DiversifyOptions {
    DiversifyOptions {
        config: DIV_CFG,
        pool: POOL,
        cap: CAP,
    }
}

/// Session-mode knobs: window below the pool, answers limit below the div
/// cap so cross-mode cache hits exercise truncation in both directions.
const WINDOW: usize = 8;
const WLIMIT: usize = 3;

/// Cold diversified oracle: best-first pool over a fresh interpreter,
/// `executed_div_pool` with a plain cache, Alg. 4.1 — rendered with
/// bit-exact relevance so "identical" means identical.
fn div_oracle(snapshot: &SearchSnapshot, terms: &[String]) -> (usize, String) {
    let q = KeywordQuery::from_terms(terms.to_vec());
    let interpreter = snapshot.interpreter();
    let ranked = interpreter.top_k(&q, POOL);
    let (items, keys, _stats) = executed_div_pool(
        &snapshot.db,
        &snapshot.index,
        &snapshot.catalog,
        &ranked,
        DivExecOptions { limit: CAP },
    );
    let sel = diversify(&items, DIV_CFG);
    let mut out = String::new();
    for &i in &sel {
        out.push_str(&format!(
            "rank={i} rel_bits={:016x} atoms={:?} keys={:?}\n",
            items[i].relevance.to_bits(),
            items[i].atoms,
            keys[i].iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    (items.len(), out)
}

/// Render a served diversified reply in the oracle's format.
fn canon_div(reply: &DiversifiedReply) -> String {
    let mut out = String::new();
    for a in &reply.answers {
        out.push_str(&format!(
            "rank={} rel_bits={:016x} atoms={:?} keys={:?}\n",
            a.pool_rank,
            a.relevance.to_bits(),
            a.atoms,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

/// Render one window-answers run: indexes, raw tuple trees, and both key
/// sets — the full observable content of an `ExecutedResult`.
fn canon_window(answers: &[(usize, Arc<keybridge::core::ExecutedResult>)]) -> String {
    let mut out = String::new();
    for (i, r) in answers {
        out.push_str(&format!(
            "idx={i} jtts={:?} keys={:?} all={:?}\n",
            r.jtts,
            r.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
            r.all_keys
                .iter()
                .map(|k| (k.table, k.pk))
                .collect::<Vec<_>>(),
        ));
    }
    out
}

// --- fixture logs (mirroring tests/service.rs) ---------------------------

fn imdb_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn lyrics_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

/// First tokens of the leading rows of `table` as single-keyword queries.
fn token_log(
    db: &keybridge::relstore::Database,
    table: keybridge::relstore::TableId,
    n: usize,
) -> Vec<Vec<String>> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for i in 0..db.table(table).len().min(12) as u32 {
        let row = db.table(table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap_or(""));
        if let Some(t) = toks.first() {
            out.push(vec![t.clone()]);
        }
        if out.len() >= n {
            break;
        }
    }
    assert!(!out.is_empty(), "no tokens drawn from fixture");
    out
}

fn freebase_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let queries = token_log(&fb.db, fb.topic, 5);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn yago_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let queries = token_log(&fb.db, yago.gold[0].1, 4);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

// --- diversified: warm concurrent service == cold offline oracle ---------

/// Replay the log's diversified requests from several concurrent clients
/// over a warm service (plain searches interleave to cross-pollute the
/// shared caches) and assert every reply is byte-identical to the cold
/// `divq` oracle.
fn assert_diversified_identical(snapshot: Arc<SearchSnapshot>, queries: &[Vec<String>]) {
    let oracles: Vec<(usize, String)> = queries
        .iter()
        .map(|terms| div_oracle(&snapshot, terms))
        .collect();
    let service = Arc::new(SearchService::start(snapshot, 4));
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let service = Arc::clone(&service);
            let oracles = &oracles;
            let queries = queries.to_vec();
            scope.spawn(move || {
                for pass in 0..2 {
                    for i in 0..queries.len() {
                        let j = (i + c) % queries.len();
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        // Plain searches warm the shared tier with results
                        // executed under *different* limits than the pool
                        // cap — the cross-mode truncation case.
                        let _ = service.search(&q, 5);
                        let reply = service.search_diversified(&q, div_opts());
                        assert_eq!(
                            reply.pool, oracles[j].0,
                            "pass {pass} client {c}: pool size diverged for {:?}",
                            queries[j]
                        );
                        assert_eq!(
                            canon_div(&reply),
                            oracles[j].1,
                            "pass {pass} client {c}: {:?} diverged from the cold oracle",
                            queries[j]
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn diversified_identical_imdb() {
    let (snap, queries) = imdb_log();
    assert_diversified_identical(snap, &queries);
}

#[test]
fn diversified_identical_lyrics() {
    let (snap, queries) = lyrics_log();
    assert_diversified_identical(snap, &queries);
}

#[test]
fn diversified_identical_freebase() {
    let (snap, queries) = freebase_log();
    assert_diversified_identical(snap, &queries);
}

#[test]
fn diversified_identical_yago() {
    let (snap, queries) = yago_log();
    assert_diversified_identical(snap, &queries);
}

// --- sessions: served registry == cold offline iqp session ---------------

/// Open a service session and a cold offline session for the same query,
/// drive both through an identical deterministic verdict sequence, and
/// assert the proposed options, window sizes, and executed window answers
/// stay byte-identical at every step.
fn assert_session_identical(snapshot: Arc<SearchSnapshot>, queries: &[Vec<String>]) {
    let service = SearchService::start(Arc::clone(&snapshot), 2);
    for terms in queries {
        let q = KeywordQuery::from_terms(terms.clone());
        let interpreter = snapshot.interpreter();
        let mut oracle =
            ConstructionSession::for_query(&interpreter, &q, WINDOW, SessionConfig::default());
        // Plain traffic first: the session path must stay identical even
        // when its shared tier is pre-warmed by other request modes.
        let _ = service.search(&q, 5);
        let mut view: SessionView = service.open_session(&q, WINDOW, SessionConfig::default());
        assert_eq!(view.remaining, oracle.remaining().len(), "{terms:?}");
        assert_eq!(
            view.next_option,
            oracle.next_option(&snapshot.catalog),
            "{terms:?}"
        );
        for step in 0..3 {
            let served = service
                .session_answers(view.id, WLIMIT)
                .expect("session open");
            let cold =
                oracle.window_answers(&snapshot.db, &snapshot.index, &snapshot.catalog, WLIMIT);
            assert_eq!(
                canon_window(&served.answers),
                canon_window(&cold),
                "{terms:?}: window answers diverged at step {step}"
            );
            let Some(option) = view.next_option.clone() else {
                break;
            };
            let accepted = step % 2 == 0;
            oracle.apply(&snapshot.catalog, option.clone(), accepted);
            view = service
                .advance_session(view.id, &option, accepted)
                .expect("session open");
            assert_eq!(
                view.remaining,
                oracle.remaining().len(),
                "{terms:?}: windows diverged after step {step}"
            );
            assert_eq!(view.steps, oracle.steps(), "{terms:?}");
            assert_eq!(
                view.next_option,
                oracle.next_option(&snapshot.catalog),
                "{terms:?}: proposed options diverged after step {step}"
            );
        }
        assert!(service.close_session(view.id));
    }
}

#[test]
fn session_identical_imdb() {
    let (snap, queries) = imdb_log();
    assert_session_identical(snap, &queries);
}

#[test]
fn session_identical_lyrics() {
    let (snap, queries) = lyrics_log();
    assert_session_identical(snap, &queries);
}

#[test]
fn session_identical_freebase() {
    let (snap, queries) = freebase_log();
    assert_session_identical(snap, &queries);
}

#[test]
fn session_identical_yago() {
    let (snap, queries) = yago_log();
    assert_session_identical(snap, &queries);
}

// --- concurrent stress: sessions pinned across epoch swaps ---------------

/// Eight clients hammer a service with all three request modes while a
/// writer swaps epochs mid-replay. Sessions opened at epoch 0 must keep
/// producing epoch-0 window answers throughout; every racing diversified
/// reply must match the cold oracle of *exactly* the epoch it reports; and
/// sessions opened after the last swap must pin the final epoch.
#[test]
fn stress_sessions_pinned_across_epoch_swaps() {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let plan = holdout_plan(
        &data.db,
        IngestConfig {
            seed: 77,
            holdout: 0.25,
            batches: 3,
        },
    );
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();

    // One cold snapshot per epoch: preload + batches[..e].
    let snapshot_for = |db: &keybridge::relstore::Database| -> Arc<SearchSnapshot> {
        Arc::new(SearchSnapshot::new(
            db.clone(),
            InvertedIndex::build(db),
            catalog.clone(),
            InterpreterConfig::default(),
        ))
    };
    let mut oracle_db = plan.initial.clone();
    let mut epoch_snapshots: Vec<Arc<SearchSnapshot>> = vec![snapshot_for(&oracle_db)];
    for batch in &plan.batches {
        oracle_db.insert_batch(batch).unwrap();
        epoch_snapshots.push(snapshot_for(&oracle_db));
    }
    // Per-epoch diversified oracles, and epoch-0 session-window oracles.
    let div_oracles: Vec<Vec<(usize, String)>> = epoch_snapshots
        .iter()
        .map(|snap| queries.iter().map(|t| div_oracle(snap, t)).collect())
        .collect();
    let session_oracles: Vec<String> = queries
        .iter()
        .map(|terms| {
            let q = KeywordQuery::from_terms(terms.clone());
            let interpreter = epoch_snapshots[0].interpreter();
            let oracle =
                ConstructionSession::for_query(&interpreter, &q, WINDOW, SessionConfig::default());
            canon_window(&oracle.window_answers(
                &epoch_snapshots[0].db,
                &epoch_snapshots[0].index,
                &epoch_snapshots[0].catalog,
                WLIMIT,
            ))
        })
        .collect();

    let service = Arc::new(SearchService::start(Arc::clone(&epoch_snapshots[0]), 4));
    // Pin one session per query at epoch 0, before any swap.
    let sessions: Vec<SessionView> = queries
        .iter()
        .map(|terms| {
            service.open_session(
                &KeywordQuery::from_terms(terms.clone()),
                WINDOW,
                SessionConfig::default(),
            )
        })
        .collect();
    for s in &sessions {
        assert_eq!(s.epoch.0, 0);
    }

    std::thread::scope(|scope| {
        for c in 0..8usize {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let sessions = &sessions;
            let div_oracles = &div_oracles;
            let session_oracles = &session_oracles;
            scope.spawn(move || {
                for pass in 0..2 {
                    for i in 0..queries.len() {
                        let j = if c % 2 == 0 {
                            (i + c) % queries.len()
                        } else {
                            (queries.len() - 1 + c - i) % queries.len()
                        };
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        match (c + i) % 3 {
                            0 => {
                                // Plain search: epoch-tagged, warms caches.
                                let reply = service.search_versioned(&q, 5);
                                assert!((reply.epoch.0 as usize) < div_oracles.len());
                            }
                            1 => {
                                let reply = service.search_diversified(&q, div_opts());
                                let e = reply.epoch.0 as usize;
                                assert!(e < div_oracles.len(), "impossible epoch {e}");
                                assert_eq!(
                                    reply.pool, div_oracles[e][j].0,
                                    "pass {pass} client {c}: pool diverged at epoch {e}"
                                );
                                assert_eq!(
                                    canon_div(&reply),
                                    div_oracles[e][j].1,
                                    "pass {pass} client {c}: {:?} does not match its \
                                     epoch-{e} oracle — cross-epoch state leaked",
                                    queries[j]
                                );
                            }
                            _ => {
                                // The pinned session must answer from epoch
                                // 0 no matter how many swaps have landed.
                                let got = service
                                    .session_answers(sessions[j].id, WLIMIT)
                                    .expect("session open");
                                assert_eq!(got.epoch.0, 0, "session lost its pin");
                                assert_eq!(
                                    canon_window(&got.answers),
                                    session_oracles[j],
                                    "pass {pass} client {c}: pinned session {:?} \
                                     drifted off its epoch-0 answers",
                                    queries[j]
                                );
                            }
                        }
                    }
                }
            });
        }
        // The writer: swap epochs mid-replay.
        let writer = Arc::clone(&service);
        let batches = plan.batches.clone();
        scope.spawn(move || {
            for batch in &batches {
                std::thread::sleep(std::time::Duration::from_millis(3));
                writer.ingest(batch).unwrap();
            }
        });
    });

    let final_epoch = plan.batches.len();
    assert_eq!(service.current_epoch().0 as usize, final_epoch);
    // Settled: diversified requests serve the final epoch byte-identically…
    for (j, terms) in queries.iter().enumerate() {
        let reply =
            service.search_diversified(&KeywordQuery::from_terms(terms.clone()), div_opts());
        assert_eq!(reply.epoch.0 as usize, final_epoch);
        assert_eq!(canon_div(&reply), div_oracles[final_epoch][j].1);
    }
    // …the old sessions still answer from epoch 0…
    for (j, s) in sessions.iter().enumerate() {
        let got = service.session_answers(s.id, WLIMIT).expect("open");
        assert_eq!(got.epoch.0, 0);
        assert_eq!(canon_window(&got.answers), session_oracles[j]);
    }
    // …and a fresh session pins the final epoch, matching its cold oracle.
    let q = KeywordQuery::from_terms(queries[0].clone());
    let fresh = service.open_session(&q, WINDOW, SessionConfig::default());
    assert_eq!(fresh.epoch.0 as usize, final_epoch);
    let snap = &epoch_snapshots[final_epoch];
    let interpreter = snap.interpreter();
    let oracle = ConstructionSession::for_query(&interpreter, &q, WINDOW, SessionConfig::default());
    assert_eq!(fresh.remaining, oracle.remaining().len());
    let got = service.session_answers(fresh.id, WLIMIT).expect("open");
    assert_eq!(
        canon_window(&got.answers),
        canon_window(&oracle.window_answers(&snap.db, &snap.index, &snap.catalog, WLIMIT))
    );
    let stats = service.stats();
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    assert!(stats.sessions_open >= queries.len());
}
