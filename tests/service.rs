//! Concurrency correctness of the serving layer: N threads issuing
//! `answers_top_k` through one `SearchService` must produce *byte-identical*
//! results to the cold single-threaded path — same interpretations, same
//! bit-exact scores, same joining tuple trees, same key sets, same order —
//! on all four datagen fixtures, including under overlapping query logs
//! hammering the shared caches from many clients at once.

use keybridge::core::{
    InterpreterConfig, KeywordQuery, RankedAnswer, SearchService, SearchSnapshot, TemplateCatalog,
};
use keybridge::datagen::{
    holdout_plan, FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, IngestConfig,
    LyricsConfig, LyricsDataset, Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::index::{InvertedIndex, Tokenizer};
use std::sync::Arc;

/// Render one answer with bit-exact scores so "identical" means identical.
fn canon(answers: &[RankedAnswer]) -> String {
    let mut out = String::new();
    for a in answers {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x} jtt={:?} keys={:?}\n",
            a.interpretation.template,
            a.interpretation.bindings,
            a.log_score.to_bits(),
            a.jtt,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

/// The cold single-threaded reference: a fresh interpreter per query log
/// replay, no shared state between queries at all.
fn reference(snapshot: &SearchSnapshot, queries: &[Vec<String>], k: usize) -> Vec<String> {
    queries
        .iter()
        .map(|terms| {
            let q = KeywordQuery::from_terms(terms.clone());
            canon(&snapshot.interpreter().answers_top_k(&q, k))
        })
        .collect()
}

/// Replay `queries` through `service` from `clients` concurrent threads
/// (every client replays the *whole* log, so every query races against
/// itself and its neighbors on the shared caches) and assert each reply is
/// byte-identical to the reference.
fn assert_identical_under_concurrency(
    snapshot: Arc<SearchSnapshot>,
    queries: &[Vec<String>],
    workers: usize,
    clients: usize,
    k: usize,
) {
    let expected = Arc::new(reference(&snapshot, queries, k));
    let service = Arc::new(SearchService::start(snapshot, workers));
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            let queries = queries.to_vec();
            scope.spawn(move || {
                // Stagger starting offsets so clients overlap on *different*
                // queries, not in lockstep.
                for i in 0..queries.len() {
                    let j = (i + c * 3) % queries.len();
                    let q = KeywordQuery::from_terms(queries[j].clone());
                    let got = canon(&service.search(&q, k));
                    assert_eq!(
                        got, expected[j],
                        "client {c}: query {:?} diverged from single-threaded run",
                        queries[j]
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.served, clients * queries.len());
    assert!(stats.nonempty_entries > 0, "shared cache never populated");
}

/// Seeded keyword log for a fixture that has a real workload generator.
fn imdb_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn lyrics_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

/// First tokens of the leading rows of `table` as single-keyword queries.
fn token_log(
    db: &keybridge::relstore::Database,
    table: keybridge::relstore::TableId,
    n: usize,
) -> Vec<Vec<String>> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for i in 0..db.table(table).len().min(12) as u32 {
        let row = db.table(table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap_or(""));
        if let Some(t) = toks.first() {
            out.push(vec![t.clone()]);
        }
        if out.len() >= n {
            break;
        }
    }
    assert!(!out.is_empty(), "no tokens drawn from fixture");
    out
}

fn freebase_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let queries = token_log(&fb.db, fb.topic, 6);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn yago_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    // YAGO instances live in the Freebase universe; draw the log from the
    // first gold-matched table like the golden pipeline tests do.
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let queries = token_log(&fb.db, yago.gold[0].1, 5);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

#[test]
fn concurrent_identical_imdb() {
    let (snap, queries) = imdb_log();
    assert_identical_under_concurrency(snap, &queries, 4, 4, 5);
}

#[test]
fn concurrent_identical_lyrics() {
    let (snap, queries) = lyrics_log();
    assert_identical_under_concurrency(snap, &queries, 4, 4, 5);
}

#[test]
fn concurrent_identical_freebase() {
    let (snap, queries) = freebase_log();
    assert_identical_under_concurrency(snap, &queries, 4, 4, 5);
}

#[test]
fn concurrent_identical_yago() {
    let (snap, queries) = yago_log();
    assert_identical_under_concurrency(snap, &queries, 4, 4, 5);
}

/// Loom-free stress: two passes of eight clients over one warm service with
/// overlapping, interleaved logs — late requests are served almost entirely
/// from caches another thread filled, and must still be byte-identical.
#[test]
fn stress_overlapping_logs_warm_caches() {
    let (snap, queries) = imdb_log();
    let k = 5;
    let expected = Arc::new(reference(&snap, &queries, k));
    let service = Arc::new(SearchService::start(snap, 4));
    for pass in 0..2 {
        std::thread::scope(|scope| {
            for c in 0..8 {
                let service = Arc::clone(&service);
                let expected = Arc::clone(&expected);
                let queries = queries.clone();
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        // Forward on even clients, backward on odd ones:
                        // maximal overlap on distinct queries.
                        let j = if c % 2 == 0 {
                            (i + c) % queries.len()
                        } else {
                            (queries.len() - 1 + c - i) % queries.len()
                        };
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        let got = canon(&service.search(&q, k));
                        assert_eq!(
                            got, expected[j],
                            "pass {pass} client {c}: {:?} diverged",
                            queries[j]
                        );
                    }
                });
            }
        });
    }
    let stats = service.stats();
    assert_eq!(stats.served, 2 * 8 * queries.len());
    // The second pass must have been served from shared state.
    assert!(stats.nonempty_hits > 0);
    assert!(
        stats.result_hits > 0,
        "warm replays never hit the shared results"
    );
}

/// Epoch-swap stress: eight clients replay an overlapping log while a
/// writer thread ingests batches (swapping epochs) mid-replay. Every reply
/// must be byte-identical to the cold oracle of *exactly* the epoch it
/// reports — a reply may race ahead of or behind the writer, but it must
/// never mix state from two epochs (e.g. an epoch-0 cached verdict pruning
/// an epoch-1 answer).
#[test]
fn stress_writer_swaps_epochs_mid_replay() {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let k = 5;
    let plan = holdout_plan(
        &data.db,
        IngestConfig {
            seed: 77,
            holdout: 0.25,
            batches: 4,
        },
    );
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();

    // One cold single-threaded oracle per epoch: preload + batches[..e].
    let mut oracle_db = plan.initial.clone();
    let oracle_for = |db: &keybridge::relstore::Database| -> Vec<String> {
        let index = InvertedIndex::build(db);
        let snap = SearchSnapshot::new(
            db.clone(),
            index,
            catalog.clone(),
            InterpreterConfig::default(),
        );
        queries
            .iter()
            .map(|terms| {
                let q = KeywordQuery::from_terms(terms.clone());
                canon(&snap.interpreter().answers_top_k(&q, k))
            })
            .collect()
    };
    let mut oracles: Vec<Vec<String>> = vec![oracle_for(&oracle_db)];
    for batch in &plan.batches {
        oracle_db.insert_batch(batch).unwrap();
        oracles.push(oracle_for(&oracle_db));
    }

    let service = Arc::new(SearchService::start(
        Arc::new(SearchSnapshot::new(
            plan.initial.clone(),
            InvertedIndex::build(&plan.initial),
            catalog,
            InterpreterConfig::default(),
        )),
        4,
    ));

    // Warm epoch 0 before the race so the first swap provably displaces a
    // populated cache generation.
    let warm = service.search_versioned(&KeywordQuery::from_terms(queries[0].clone()), k);
    assert_eq!(canon(&warm.answers), oracles[0][0]);

    std::thread::scope(|scope| {
        for c in 0..8usize {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let oracles = &oracles;
            scope.spawn(move || {
                for pass in 0..2 {
                    for i in 0..queries.len() {
                        // Forward on even clients, backward on odd ones:
                        // maximal overlap on distinct queries.
                        let j = if c % 2 == 0 {
                            (i + c) % queries.len()
                        } else {
                            (queries.len() - 1 + c - i) % queries.len()
                        };
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        let reply = service.search_versioned(&q, k);
                        let epoch = reply.epoch.0 as usize;
                        assert!(epoch < oracles.len(), "impossible epoch {epoch}");
                        assert_eq!(
                            canon(&reply.answers),
                            oracles[epoch][j],
                            "pass {pass} client {c}: {:?} does not match the \
                             epoch-{epoch} oracle — cross-epoch state leaked",
                            queries[j]
                        );
                    }
                }
            });
        }
        // The writer: one epoch swap roughly every few replies.
        let writer = Arc::clone(&service);
        let batches = plan.batches.clone();
        scope.spawn(move || {
            for batch in &batches {
                std::thread::sleep(std::time::Duration::from_millis(3));
                writer.ingest(batch).unwrap();
            }
        });
    });

    let stats = service.stats();
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    assert_eq!(stats.epoch, plan.batches.len() as u64);
    assert_eq!(stats.served, 8 * 2 * queries.len() + 1);
    // The first swap displaced the warmed epoch-0 generation.
    assert!(
        stats.stale_evictions > 0,
        "displaced cache generations were never accounted"
    );
    // The settled service serves the final epoch, byte-identical.
    for (j, terms) in queries.iter().enumerate() {
        let reply = service.search_versioned(&KeywordQuery::from_terms(terms.clone()), k);
        assert_eq!(reply.epoch.0 as usize, plan.batches.len());
        assert_eq!(canon(&reply.answers), oracles[plan.batches.len()][j]);
    }
}
