//! Randomized property tests over the core invariants.
//!
//! Seeded random-case loops (the registry `proptest` crate is unavailable
//! in the offline build; the vendored `rand` drives case generation
//! deterministically, so failures reproduce by seed).

use keybridge::core::{
    GenerationStrategy, Interpreter, InterpreterConfig, KeywordQuery, ProbabilityConfig,
    ProbabilityModel, ScoredInterpretation, TemplateCatalog, TemplatePrior,
};
use keybridge::divq::{alpha_ndcg_w, diversify, jaccard, ws_recall, DivItem, EvalItem};
use keybridge::index::{InvertedIndex, Tokenizer};
use keybridge::iqp::{brute_force_plan, greedy_plan, plan_cost, PlanProblem};
use keybridge::relstore::{AttrId, AttrRef, Database, SchemaBuilder, TableId, TableKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Tokenizer and probability-normalization invariants.
// ---------------------------------------------------------------------------

/// A random string mixing letters, digits, punctuation, whitespace, and
/// non-ASCII — the `.{0,120}` strategy of the original proptest suite.
fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'z', 'A', 'Q', '0', '7', ' ', ' ', '\t', '.', ',', '!', '-', '_', '\'', '"', '(',
        ')', 'é', 'ü', 'ß', '中', '✓', '\n',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

#[test]
fn tokenizer_output_is_lowercase_alnum() {
    let mut rng = StdRng::seed_from_u64(101);
    let t = Tokenizer::keep_all();
    for _ in 0..200 {
        let input = random_text(&mut rng, 120);
        for tok in t.tokenize(&input) {
            assert!(!tok.is_empty());
            assert!(tok.chars().all(char::is_alphanumeric), "{tok}");
            assert_eq!(tok, tok.to_lowercase());
        }
    }
}

#[test]
fn tokenizer_idempotent_on_own_output() {
    let mut rng = StdRng::seed_from_u64(102);
    let t = Tokenizer::new();
    for _ in 0..200 {
        let input = random_text(&mut rng, 120);
        let once = t.tokenize(&input);
        let twice = t.tokenize(&once.join(" "));
        assert_eq!(once, twice, "input {input:?}");
    }
}

#[test]
fn normalize_is_distribution() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..100 {
        let n = rng.gen_range(1..40usize);
        let logs: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..0.0)).collect();
        let probs = ProbabilityModel::normalize(&logs);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for p in &probs {
            assert!((0.0..=1.0).contains(p));
        }
        // Order-preserving: higher log-score => no lower probability.
        for i in 0..n {
            for j in 0..n {
                if logs[i] > logs[j] {
                    assert!(probs[i] >= probs[j] - 1e-12);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Diversification and metric invariants.
// ---------------------------------------------------------------------------

fn random_atoms(rng: &mut StdRng) -> BTreeSet<keybridge::core::BindingAtom> {
    let n = rng.gen_range(0..6usize);
    (0..n)
        .map(|_| keybridge::core::BindingAtom {
            keyword: format!("k{}", rng.gen_range(0..5usize)),
            kind: keybridge::core::BindingAtomKind::Value,
            attr: AttrRef {
                table: TableId(rng.gen_range(0..6u32)),
                attr: AttrId(rng.gen_range(0..4u32)),
            },
        })
        .collect()
}

#[test]
fn jaccard_bounds_and_symmetry() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..200 {
        let a = random_atoms(&mut rng);
        let b = random_atoms(&mut rng);
        let s = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, jaccard(&b, &a));
        assert_eq!(jaccard(&a, &a), 1.0);
    }
}

#[test]
fn diversify_is_permutation_prefix() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..100 {
        let n = rng.gen_range(1..20usize);
        let k = rng.gen_range(1..25usize);
        let mut items: Vec<DivItem> = (0..n)
            .map(|i| DivItem {
                relevance: rng.gen_range(0.001..1.0),
                atoms: [keybridge::core::BindingAtom {
                    keyword: format!("k{}", i % 4),
                    kind: keybridge::core::BindingAtomKind::Value,
                    attr: AttrRef {
                        table: TableId((i % 5) as u32),
                        attr: AttrId(0),
                    },
                }]
                .into_iter()
                .collect(),
            })
            .collect();
        items.sort_by(|a, b| b.relevance.partial_cmp(&a.relevance).unwrap());
        let sel = diversify(&items, keybridge::divq::DiversifyConfig { lambda: 0.3, k });
        // Selection size, uniqueness, and range.
        assert_eq!(sel.len(), k.min(items.len()));
        let distinct: BTreeSet<_> = sel.iter().collect();
        assert_eq!(distinct.len(), sel.len());
        assert!(sel.iter().all(|&i| i < items.len()));
        // The most relevant item always leads.
        assert_eq!(sel[0], 0);
    }
}

#[test]
fn metrics_bounded() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..100 {
        let n = rng.gen_range(1..12usize);
        let pool: Vec<EvalItem> = (0..n)
            .map(|_| {
                let keys = (0..rng.gen_range(0..8usize))
                    .map(|_| keybridge::core::ResultKey {
                        table: TableId(0),
                        pk: rng.gen_range(0..30i64),
                    })
                    .collect();
                EvalItem {
                    relevance: rng.gen_range(0.0..1.0),
                    keys,
                }
            })
            .collect();
        for alpha in [0.0, 0.5, 0.99] {
            for v in alpha_ndcg_w(&pool, &pool, alpha, 10) {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "ndcg {v}");
            }
        }
        let recall = ws_recall(&pool, &pool, 10);
        for w in recall.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "ws-recall not monotone");
        }
        assert!(recall.last().copied().unwrap_or(0.0) <= 1.0 + 1e-9);
    }
}

#[test]
fn greedy_plan_never_beats_optimal() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..64 {
        let m = rng.gen_range(4..12usize);
        let n = rng.gen_range(2..7usize);
        let seed = rng.gen_range(0..500u64);
        let p = PlanProblem::random(m, n, seed);
        let (bf_plan, bf) = brute_force_plan(&p);
        let (greedy_tree, gr) = greedy_plan(&p);
        assert!(gr + 1e-9 >= bf, "greedy {gr} < optimal {bf}");
        // Costs agree with the standalone evaluator.
        assert!((plan_cost(&p, &bf_plan) - bf).abs() < 1e-9);
        assert!((plan_cost(&p, &greedy_tree) - gr).abs() < 1e-9);
    }
}

#[test]
fn nary_round_trip_preserves_plans() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..64 {
        let m = rng.gen_range(4..12usize);
        let n = rng.gen_range(2..6usize);
        let seed = rng.gen_range(0..200u64);
        let p = PlanProblem::random(m, n, seed);
        let (plan, cost) = greedy_plan(&p);
        let back = keybridge::iqp::to_binary(&keybridge::iqp::to_nary(&plan));
        assert_eq!(back, plan);
        assert!((plan_cost(&p, &back) - cost).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Engine- and statistics-level invariants.
// ---------------------------------------------------------------------------

fn tiny_db(names: &[String]) -> Database {
    let mut b = SchemaBuilder::new();
    b.table("t", TableKind::Entity).pk("id").text_attr("name");
    let mut db = Database::new(b.finish().expect("valid schema"));
    let t = db.schema().table_id("t").expect("declared");
    for (i, n) in names.iter().enumerate() {
        db.insert(t, vec![Value::Int(i as i64), Value::text(n.clone())])
            .expect("insert succeeds");
    }
    db
}

/// `count` random values of 1–3 tokens over a tiny alphabet (dense term
/// collisions, like the original `[a-d]{1,3}( [a-d]{1,3}){0,2}` strategy).
fn random_names(rng: &mut StdRng, count: usize, alphabet: &[&str]) -> Vec<String> {
    (0..count)
        .map(|_| {
            let words = rng.gen_range(1..=3usize);
            (0..words)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())].to_owned())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

#[test]
fn pk_lookup_roundtrip() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..32 {
        let count = rng.gen_range(1..30usize);
        let names = random_names(&mut rng, count, &["ab", "cd", "e f", "gh"]);
        let db = tiny_db(&names);
        let t = db.schema().table_id("t").unwrap();
        assert_eq!(db.table(t).len(), names.len());
        for (i, name) in names.iter().enumerate() {
            let row = db.table(t).by_pk(i as i64).expect("pk present");
            assert_eq!(db.pk_value(t, row), i as i64);
            assert_eq!(db.table(t).row(row)[1].as_text().unwrap(), name.as_str());
        }
        assert!(db.table(t).by_pk(names.len() as i64 + 7).is_none());
    }
}

#[test]
fn atf_is_probability_and_joint_bounded() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..32 {
        let count = rng.gen_range(2..25usize);
        let names = random_names(&mut rng, count, &["a", "b", "c", "d", "ab", "cd"]);
        let db = tiny_db(&names);
        let idx = InvertedIndex::build(&db);
        let attr = db.schema().resolve("t", "name").unwrap();
        let stats = idx.attr_stats(attr);
        if stats.total_tokens == 0 {
            continue;
        }
        // ATF of every seen term lies in (0, 1] and joint ATF of any pair
        // never exceeds either marginal (co-occurrence is rarer than
        // occurrence, up to the shared smoothing term).
        let terms: Vec<String> = names
            .iter()
            .flat_map(|n| n.split(' ').map(str::to_owned))
            .take(12)
            .collect();
        for a in &terms {
            let atf = idx.atf(a, attr, 1.0);
            assert!(atf > 0.0 && atf <= 1.0, "atf {atf}");
            for b in &terms {
                if a == b {
                    continue;
                }
                let joint = idx.joint_atf(&[a.clone(), b.clone()], attr, 1.0);
                assert!(joint <= idx.atf(a, attr, 1.0) + 1e-12);
                assert!(joint <= idx.atf(b, attr, 1.0) + 1e-12);
            }
        }
    }
}

#[test]
fn rows_with_all_is_intersection() {
    let mut rng = StdRng::seed_from_u64(111);
    for _ in 0..32 {
        let count = rng.gen_range(2..20usize);
        let names = random_names(&mut rng, count, &["a", "b", "c", "ab", "ba"]);
        let db = tiny_db(&names);
        let idx = InvertedIndex::build(&db);
        let attr = db.schema().resolve("t", "name").unwrap();
        for a in ["a", "b", "ab"] {
            for b in ["c", "ba", "a"] {
                let both = idx.rows_with_all(&[a.to_owned(), b.to_owned()], attr);
                let only_a = idx.rows_with_all(&[a.to_owned()], attr);
                let only_b = idx.rows_with_all(&[b.to_owned()], attr);
                for r in &both {
                    assert!(only_a.contains(r) && only_b.contains(r));
                }
                assert!(both.len() <= only_a.len().min(only_b.len()));
                // The early-exit probe agrees with the full intersection.
                assert_eq!(
                    idx.has_row_with_all(&[a.to_owned(), b.to_owned()], attr),
                    !both.is_empty()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Best-first top-k equals the exhaustive oracle.
// ---------------------------------------------------------------------------

/// A random three-table movie-ish schema with skewed, ambiguous text and a
/// random row count — small enough to enumerate exhaustively, varied enough
/// to exercise joins, self-joins, schema-name bindings, and empty
/// predicates.
fn random_db(rng: &mut StdRng) -> Database {
    let mut b = SchemaBuilder::new();
    b.table("actor", TableKind::Entity)
        .pk("id")
        .text_attr("name");
    b.table("movie", TableKind::Entity)
        .pk("id")
        .text_attr("title");
    b.table("acts", TableKind::Relation)
        .pk("id")
        .int_attr("actor_id")
        .int_attr("movie_id");
    b.foreign_key("acts", "actor_id", "actor").unwrap();
    b.foreign_key("acts", "movie_id", "movie").unwrap();
    let mut db = Database::new(b.finish().unwrap());
    let actor = db.schema().table_id("actor").unwrap();
    let movie = db.schema().table_id("movie").unwrap();
    let acts = db.schema().table_id("acts").unwrap();
    // Tiny vocabulary: heavy term sharing between names and titles, which
    // is what makes interpretations ambiguous.
    const VOCAB: &[&str] = &["tom", "meg", "stone", "london", "terminal", "guest", "fire"];
    let n_actor = rng.gen_range(2..7usize);
    let n_movie = rng.gen_range(2..7usize);
    for i in 0..n_actor {
        let name = format!(
            "{} {}",
            VOCAB[rng.gen_range(0..VOCAB.len())],
            VOCAB[rng.gen_range(0..VOCAB.len())]
        );
        db.insert(actor, vec![Value::Int(i as i64), Value::text(name)])
            .unwrap();
    }
    for i in 0..n_movie {
        let words = rng.gen_range(1..=2usize);
        let title = (0..words)
            .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())])
            .collect::<Vec<_>>()
            .join(" ");
        db.insert(movie, vec![Value::Int(i as i64), Value::text(title)])
            .unwrap();
    }
    for i in 0..rng.gen_range(0..8usize) {
        db.insert(
            acts,
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_actor as i64)),
                Value::Int(rng.gen_range(0..n_movie as i64)),
            ],
        )
        .unwrap();
    }
    db
}

/// A random 1–4 keyword query over the vocabulary (occasionally a schema
/// word or an unknown token).
fn random_query(rng: &mut StdRng) -> KeywordQuery {
    const POOL: &[&str] = &[
        "tom", "meg", "stone", "london", "terminal", "guest", "fire", "actor", "movie", "title",
        "name", "zzzz",
    ];
    let n = rng.gen_range(1..=4usize);
    KeywordQuery::from_terms(
        (0..n)
            .map(|_| POOL[rng.gen_range(0..POOL.len())].to_owned())
            .collect(),
    )
}

/// A random interpreter configuration covering every scoring mode.
fn random_config(rng: &mut StdRng) -> InterpreterConfig {
    let prob = ProbabilityConfig {
        alpha: if rng.gen_bool(0.5) { 1.0 } else { 0.25 },
        use_joint_atf: rng.gen_bool(0.7),
        unmapped_prob: if rng.gen_bool(0.5) { 1e-4 } else { 1e-8 },
        uniform_keywords: rng.gen_bool(0.15),
        ..Default::default()
    };
    let prior = if rng.gen_bool(0.3) {
        TemplatePrior::from_usage(vec![
            (vec!["actor".to_owned()], rng.gen_range(1..50usize)),
            (
                vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()],
                rng.gen_range(1..50usize),
            ),
        ])
    } else {
        TemplatePrior::Uniform
    };
    InterpreterConfig {
        require_nonempty_predicates: rng.gen_bool(0.7),
        allow_schema_bindings: rng.gen_bool(0.8),
        prob,
        prior,
        ..Default::default()
    }
}

fn assert_prefix_equal(
    got: &[ScoredInterpretation],
    oracle: &[ScoredInterpretation],
    k: usize,
    seed_note: &str,
) {
    assert_eq!(
        got.len(),
        oracle.len().min(k),
        "{seed_note}: top-{k} length ({} oracle candidates)",
        oracle.len()
    );
    for (rank, (g, w)) in got.iter().zip(oracle).enumerate() {
        assert_eq!(
            g.interpretation, w.interpretation,
            "{seed_note}: interpretation at rank {rank}"
        );
        assert!(
            (g.log_score - w.log_score).abs() < 1e-12,
            "{seed_note}: log-score at rank {rank}: {} vs {}",
            g.log_score,
            w.log_score
        );
    }
}

/// The tentpole property: on randomized schemas, data, queries, and scoring
/// configurations, `top_k(q, k)` equals the first `k` of the exhaustive
/// `ranked_with_partials` oracle — same interpretations, same scores, same
/// (tie-broken) order — and `top_k_complete` equals `ranked_interpretations`.
#[test]
fn top_k_equals_exhaustive_oracle() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut nonempty_cases = 0usize;
    for case in 0..60 {
        let db = random_db(&mut rng);
        let index = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, 3, 10_000).unwrap();
        let config = random_config(&mut rng);
        let interp = Interpreter::new(&db, &index, &catalog, config);
        let query = random_query(&mut rng);
        let note = format!("case {case} query \"{query}\"");

        let oracle_partials = interp.ranked_with_partials(&query);
        let oracle_complete = interp.ranked_interpretations(&query);
        if !oracle_partials.is_empty() {
            nonempty_cases += 1;
        }
        for k in [1, 2, 5, oracle_partials.len().max(1)] {
            let got = interp.top_k(&query, k);
            assert_prefix_equal(&got, &oracle_partials, k, &format!("{note} partials"));
            let got = interp.top_k_complete(&query, k);
            assert_prefix_equal(&got, &oracle_complete, k, &format!("{note} complete"));
        }
        // Tie-break determinism: two runs emit byte-identical rankings.
        let a = interp.top_k(&query, 7);
        let b = interp.top_k(&query, 7);
        assert_eq!(a.len(), b.len(), "{note}: nondeterministic length");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.interpretation, y.interpretation,
                "{note}: nondeterministic order"
            );
            assert_eq!(x.log_score, y.log_score, "{note}: nondeterministic score");
        }
    }
    assert!(
        nonempty_cases >= 30,
        "corpus too degenerate: only {nonempty_cases} non-empty cases"
    );
}

/// The `Exhaustive` strategy flag routes `top_k` through the oracle; both
/// strategies must agree on content, scores, and probabilities.
#[test]
fn strategy_flag_agreement() {
    let mut rng = StdRng::seed_from_u64(7878);
    for case in 0..20 {
        let db = random_db(&mut rng);
        let index = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, 3, 10_000).unwrap();
        let config = random_config(&mut rng);
        let query = random_query(&mut rng);
        let best = Interpreter::new(&db, &index, &catalog, config.clone());
        let oracle = Interpreter::new(
            &db,
            &index,
            &catalog,
            InterpreterConfig {
                strategy: GenerationStrategy::Exhaustive,
                ..config
            },
        );
        let a = best.top_k(&query, 6);
        let b = oracle.top_k(&query, 6);
        assert_eq!(a.len(), b.len(), "case {case}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interpretation, y.interpretation, "case {case}");
            assert!((x.log_score - y.log_score).abs() < 1e-12, "case {case}");
            assert!((x.probability - y.probability).abs() < 1e-9, "case {case}");
        }
    }
}
