//! Property-based tests (proptest) over the core invariants.

use keybridge::core::ProbabilityModel;
use keybridge::divq::{alpha_ndcg_w, diversify, jaccard, ws_recall, DivItem, EvalItem};
use keybridge::index::Tokenizer;
use keybridge::iqp::{brute_force_plan, greedy_plan, plan_cost, PlanProblem};
use keybridge::relstore::{AttrId, AttrRef, TableId};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arbitrary_atoms() -> impl Strategy<Value = BTreeSet<keybridge::core::BindingAtom>> {
    proptest::collection::btree_set(
        (0u32..6, 0u32..4, 0usize..5).prop_map(|(t, a, k)| keybridge::core::BindingAtom {
            keyword: format!("k{k}"),
            kind: keybridge::core::BindingAtomKind::Value,
            attr: AttrRef {
                table: TableId(t),
                attr: AttrId(a),
            },
        }),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_output_is_lowercase_alnum(input in ".{0,120}") {
        let t = Tokenizer::keep_all();
        for tok in t.tokenize(&input) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(char::is_alphanumeric), "{tok}");
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    #[test]
    fn tokenizer_idempotent_on_own_output(input in ".{0,120}") {
        let t = Tokenizer::new();
        let once = t.tokenize(&input);
        let twice = t.tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalize_is_distribution(logs in proptest::collection::vec(-500.0f64..0.0, 1..40)) {
        let probs = ProbabilityModel::normalize(&logs);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for p in &probs {
            prop_assert!((0.0..=1.0).contains(p));
        }
        // Order-preserving: higher log-score => no lower probability.
        for i in 0..logs.len() {
            for j in 0..logs.len() {
                if logs[i] > logs[j] {
                    prop_assert!(probs[i] >= probs[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn jaccard_bounds_and_symmetry(a in arbitrary_atoms(), b in arbitrary_atoms()) {
        let s = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, jaccard(&b, &a));
        prop_assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn diversify_is_permutation_prefix(
        rels in proptest::collection::vec(0.001f64..1.0, 1..20),
        k in 1usize..25,
    ) {
        let mut items: Vec<DivItem> = rels
            .iter()
            .enumerate()
            .map(|(i, &r)| DivItem {
                relevance: r,
                atoms: [keybridge::core::BindingAtom {
                    keyword: format!("k{}", i % 4),
                    kind: keybridge::core::BindingAtomKind::Value,
                    attr: AttrRef { table: TableId((i % 5) as u32), attr: AttrId(0) },
                }]
                .into_iter()
                .collect(),
            })
            .collect();
        items.sort_by(|a, b| b.relevance.partial_cmp(&a.relevance).unwrap());
        let sel = diversify(&items, keybridge::divq::DiversifyConfig { lambda: 0.3, k });
        // Selection size, uniqueness, and range.
        prop_assert_eq!(sel.len(), k.min(items.len()));
        let distinct: BTreeSet<_> = sel.iter().collect();
        prop_assert_eq!(distinct.len(), sel.len());
        prop_assert!(sel.iter().all(|&i| i < items.len()));
        // The most relevant item always leads.
        prop_assert_eq!(sel[0], 0);
    }

    #[test]
    fn metrics_bounded(
        rels in proptest::collection::vec(0.0f64..1.0, 1..12),
        keysets in proptest::collection::vec(proptest::collection::btree_set(0i64..30, 0..8), 1..12),
    ) {
        let n = rels.len().min(keysets.len());
        let pool: Vec<EvalItem> = (0..n)
            .map(|i| EvalItem {
                relevance: rels[i],
                keys: keysets[i]
                    .iter()
                    .map(|&pk| keybridge::core::ResultKey { table: TableId(0), pk })
                    .collect(),
            })
            .collect();
        for alpha in [0.0, 0.5, 0.99] {
            for v in alpha_ndcg_w(&pool, &pool, alpha, 10) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "ndcg {v}");
            }
        }
        let recall = ws_recall(&pool, &pool, 10);
        for w in recall.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "ws-recall not monotone");
        }
        prop_assert!(recall.last().copied().unwrap_or(0.0) <= 1.0 + 1e-9);
    }

    #[test]
    fn greedy_plan_never_beats_optimal(
        m in 4usize..12,
        n in 2usize..7,
        seed in 0u64..500,
    ) {
        let p = PlanProblem::random(m, n, seed);
        let (bf_plan, bf) = brute_force_plan(&p);
        let (greedy_tree, gr) = greedy_plan(&p);
        prop_assert!(gr + 1e-9 >= bf, "greedy {gr} < optimal {bf}");
        // Costs agree with the standalone evaluator.
        prop_assert!((plan_cost(&p, &bf_plan) - bf).abs() < 1e-9);
        prop_assert!((plan_cost(&p, &greedy_tree) - gr).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Engine- and statistics-level invariants.
// ---------------------------------------------------------------------------

use keybridge::index::InvertedIndex;
use keybridge::relstore::{Database, SchemaBuilder, TableKind, Value};

fn tiny_db(names: &[String]) -> Database {
    let mut b = SchemaBuilder::new();
    b.table("t", TableKind::Entity).pk("id").text_attr("name");
    let mut db = Database::new(b.finish().expect("valid schema"));
    let t = db.schema().table_id("t").expect("declared");
    for (i, n) in names.iter().enumerate() {
        db.insert(t, vec![Value::Int(i as i64), Value::text(n.clone())])
            .expect("insert succeeds");
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pk_lookup_roundtrip(names in proptest::collection::vec("[a-z ]{0,24}", 1..30)) {
        let db = tiny_db(&names);
        let t = db.schema().table_id("t").unwrap();
        prop_assert_eq!(db.table(t).len(), names.len());
        for i in 0..names.len() {
            let row = db.table(t).by_pk(i as i64).expect("pk present");
            prop_assert_eq!(db.pk_value(t, row), i as i64);
            prop_assert_eq!(
                db.table(t).row(row)[1].as_text().unwrap(),
                names[i].as_str()
            );
        }
        prop_assert!(db.table(t).by_pk(names.len() as i64 + 7).is_none());
    }

    #[test]
    fn atf_is_probability_and_joint_bounded(
        names in proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,2}", 2..25),
    ) {
        let db = tiny_db(&names);
        let idx = InvertedIndex::build(&db);
        let attr = db.schema().resolve("t", "name").unwrap();
        let stats = idx.attr_stats(attr);
        if stats.total_tokens == 0 {
            return Ok(());
        }
        // ATF of every seen term lies in (0, 1] and joint ATF of any pair
        // never exceeds either marginal (co-occurrence is rarer than
        // occurrence, up to the shared smoothing term).
        let terms: Vec<String> = names
            .iter()
            .flat_map(|n| n.split(' ').map(str::to_owned))
            .take(12)
            .collect();
        for a in &terms {
            let atf = idx.atf(a, attr, 1.0);
            prop_assert!(atf > 0.0 && atf <= 1.0, "atf {atf}");
            for b in &terms {
                if a == b {
                    continue;
                }
                let joint = idx.joint_atf(&[a.clone(), b.clone()], attr, 1.0);
                prop_assert!(joint <= idx.atf(a, attr, 1.0) + 1e-12);
                prop_assert!(joint <= idx.atf(b, attr, 1.0) + 1e-12);
            }
        }
    }

    #[test]
    fn rows_with_all_is_intersection(
        names in proptest::collection::vec("[a-c]{1,2}( [a-c]{1,2}){0,2}", 2..20),
    ) {
        let db = tiny_db(&names);
        let idx = InvertedIndex::build(&db);
        let attr = db.schema().resolve("t", "name").unwrap();
        for a in ["a", "b", "ab"] {
            for b in ["c", "ba", "a"] {
                let both = idx.rows_with_all(&[a.to_owned(), b.to_owned()], attr);
                let only_a = idx.rows_with_all(&[a.to_owned()], attr);
                let only_b = idx.rows_with_all(&[b.to_owned()], attr);
                for r in &both {
                    prop_assert!(only_a.contains(r) && only_b.contains(r));
                }
                prop_assert!(both.len() <= only_a.len().min(only_b.len()));
            }
        }
    }

    #[test]
    fn nary_round_trip_preserves_plans(m in 4usize..12, n in 2usize..6, seed in 0u64..200) {
        let p = PlanProblem::random(m, n, seed);
        let (plan, cost) = greedy_plan(&p);
        let back = keybridge::iqp::to_binary(&keybridge::iqp::to_nary(&plan));
        prop_assert_eq!(&back, &plan);
        prop_assert!((plan_cost(&p, &back) - cost).abs() < 1e-12);
    }
}
