//! Differential update-equivalence suite — the correctness spine of the
//! live-ingestion path (**Hot path 4**).
//!
//! A `SearchService` boots from a *preload* slice of a fixture and then
//! absorbs the held-out rows through `ingest`: integrity-checked batch
//! insertion into the writer's store, incremental posting splices into the
//! inverted index, and an epoch swap publishing the result with a fresh
//! shared-cache generation. After **every** batch, every query's reply
//! through the warm, live-updated service must be *byte-identical* (same
//! interpretations, bit-exact scores, same joining tuple trees, same keys,
//! same order) to a cold `Interpreter` over a from-scratch rebuilt
//! `Database` + `InvertedIndex` holding the same rows — across all four
//! datagen fixtures and ≥ 3 randomized insert schedules each, plus
//! concurrent readers racing the epoch swaps.

use keybridge::core::{
    InterpreterConfig, KeywordQuery, RankedAnswer, SearchService, SearchSnapshot, TemplateCatalog,
};
use keybridge::datagen::{
    holdout_plan, FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, IngestConfig,
    LyricsConfig, LyricsDataset, Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::index::{InvertedIndex, Tokenizer};
use keybridge::relstore::Database;
use std::sync::Arc;

const K: usize = 5;

/// Render one answer list with bit-exact scores so "identical" means
/// identical.
fn canon(answers: &[RankedAnswer]) -> String {
    let mut out = String::new();
    for a in answers {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x} jtt={:?} keys={:?}\n",
            a.interpretation.template,
            a.interpretation.bindings,
            a.log_score.to_bits(),
            a.jtt,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

/// Cold oracle: a fresh index + single-threaded interpreter over `db`, no
/// state reused from anywhere.
fn cold_answers(db: &Database, catalog: &TemplateCatalog, queries: &[Vec<String>]) -> Vec<String> {
    let index = InvertedIndex::build(db);
    let interp =
        keybridge::core::Interpreter::new(db, &index, catalog, InterpreterConfig::default());
    queries
        .iter()
        .map(|terms| canon(&interp.answers_top_k(&KeywordQuery::from_terms(terms.clone()), K)))
        .collect()
}

/// The suite body: split `full_db`, boot a service on the preload, and after
/// every ingested batch assert all `queries` byte-identical to the cold
/// rebuild. Returns the number of batches exercised.
fn assert_update_equivalence(
    full_db: &Database,
    queries: &[Vec<String>],
    max_joins: usize,
    schedule_seed: u64,
    workers: usize,
) -> usize {
    let plan = holdout_plan(
        full_db,
        IngestConfig {
            seed: schedule_seed,
            holdout: 0.3,
            batches: 3,
        },
    );
    assert!(plan.total_rows() > 0, "holdout produced no inserts");
    let catalog = TemplateCatalog::enumerate(full_db, max_joins, 50_000).unwrap();
    let service = SearchService::start(
        Arc::new(SearchSnapshot::new(
            plan.initial.clone(),
            InvertedIndex::build(&plan.initial),
            catalog.clone(),
            InterpreterConfig::default(),
        )),
        workers,
    );

    // The oracle applies the *same* batch sequence to its own copy, so live
    // and rebuilt row ids agree by construction.
    let mut oracle_db = plan.initial.clone();
    let check = |service: &SearchService, oracle_db: &Database, epoch: u64| {
        let expected = cold_answers(oracle_db, &catalog, queries);
        for (qi, terms) in queries.iter().enumerate() {
            let reply = service.search_versioned(&KeywordQuery::from_terms(terms.clone()), K);
            assert_eq!(
                reply.epoch.0, epoch,
                "reply epoch drifted (query {qi}, seed {schedule_seed})"
            );
            assert_eq!(
                canon(&reply.answers),
                expected[qi],
                "live service diverged from cold rebuild at epoch {epoch}, \
                 query {terms:?}, seed {schedule_seed}"
            );
        }
    };

    check(&service, &oracle_db, 0);
    for (i, batch) in plan.batches.iter().enumerate() {
        let receipt = service.ingest(batch).unwrap();
        assert_eq!(receipt.epoch.0 as usize, i + 1);
        assert_eq!(receipt.rows, batch.len());
        oracle_db.insert_batch(batch).unwrap();
        check(&service, &oracle_db, receipt.epoch.0);
    }
    // The full fixture was restored.
    assert_eq!(oracle_db.total_rows(), full_db.total_rows());
    let stats = service.stats();
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    assert_eq!(stats.rows_ingested, plan.total_rows());
    plan.batches.len()
}

/// Seeded keyword log + full database for a fixture with a real workload
/// generator.
fn imdb_fixture() -> (Database, Vec<Vec<String>>) {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    (data.db, queries)
}

fn lyrics_fixture() -> (Database, Vec<Vec<String>>) {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    (data.db, queries)
}

/// First tokens of the leading rows of `table` as single-keyword queries.
fn token_log(db: &Database, table: keybridge::relstore::TableId, n: usize) -> Vec<Vec<String>> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for i in 0..db.table(table).len().min(12) as u32 {
        let row = db.table(table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap_or(""));
        if let Some(t) = toks.first() {
            out.push(vec![t.clone()]);
        }
        if out.len() >= n {
            break;
        }
    }
    assert!(!out.is_empty(), "no tokens drawn from fixture");
    out
}

fn freebase_fixture() -> (Database, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let queries = token_log(&fb.db, fb.topic, 5);
    (fb.db, queries)
}

fn yago_fixture() -> (Database, Vec<Vec<String>>) {
    // YAGO instances live in the Freebase universe; draw the log from the
    // first gold-matched table like the golden pipeline tests do.
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let queries = token_log(&fb.db, yago.gold[0].1, 4);
    (fb.db, queries)
}

#[test]
fn differential_imdb_three_schedules() {
    let (db, queries) = imdb_fixture();
    for seed in [1, 2, 3] {
        assert_update_equivalence(&db, &queries, 4, seed, 2);
    }
}

#[test]
fn differential_lyrics_three_schedules() {
    let (db, queries) = lyrics_fixture();
    for seed in [4, 5, 6] {
        assert_update_equivalence(&db, &queries, 4, seed, 2);
    }
}

#[test]
fn differential_freebase_three_schedules() {
    let (db, queries) = freebase_fixture();
    for seed in [7, 8, 9] {
        assert_update_equivalence(&db, &queries, 2, seed, 2);
    }
}

#[test]
fn differential_yago_three_schedules() {
    let (db, queries) = yago_fixture();
    for seed in [10, 11, 12] {
        assert_update_equivalence(&db, &queries, 2, seed, 2);
    }
}

/// Concurrent readers racing the writer: every versioned reply obtained
/// *while batches are being ingested* must be byte-identical to the cold
/// oracle of exactly the epoch it reports — never a blend of two epochs.
#[test]
fn concurrent_readers_race_epoch_swaps() {
    let (db, queries) = imdb_fixture();
    let plan = holdout_plan(
        &db,
        IngestConfig {
            seed: 42,
            holdout: 0.3,
            batches: 3,
        },
    );
    let catalog = TemplateCatalog::enumerate(&db, 4, 50_000).unwrap();

    // Precompute the per-epoch oracles: epoch e = preload + batches[..e].
    let mut oracle_db = plan.initial.clone();
    let mut oracles: Vec<Vec<String>> = vec![cold_answers(&oracle_db, &catalog, &queries)];
    for batch in &plan.batches {
        oracle_db.insert_batch(batch).unwrap();
        oracles.push(cold_answers(&oracle_db, &catalog, &queries));
    }

    let service = Arc::new(SearchService::start(
        Arc::new(SearchSnapshot::new(
            plan.initial.clone(),
            InvertedIndex::build(&plan.initial),
            catalog,
            InterpreterConfig::default(),
        )),
        4,
    ));

    std::thread::scope(|scope| {
        for c in 0..4usize {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let oracles = &oracles;
            scope.spawn(move || {
                for pass in 0..3 {
                    for i in 0..queries.len() {
                        let j = (i + c) % queries.len();
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        let reply = service.search_versioned(&q, K);
                        let epoch = reply.epoch.0 as usize;
                        assert!(epoch < oracles.len(), "impossible epoch {epoch}");
                        assert_eq!(
                            canon(&reply.answers),
                            oracles[epoch][j],
                            "client {c} pass {pass}: reply mixed epochs for {:?}",
                            queries[j]
                        );
                    }
                }
            });
        }
        // The writer thread: swap epochs while the readers are mid-replay.
        let writer = Arc::clone(&service);
        let batches = plan.batches.clone();
        scope.spawn(move || {
            for batch in &batches {
                std::thread::sleep(std::time::Duration::from_millis(2));
                writer.ingest(batch).unwrap();
            }
        });
    });

    let stats = service.stats();
    assert_eq!(stats.epoch, plan.batches.len() as u64);
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    // Post-race, the fully grown service still matches its final oracle.
    for (j, terms) in queries.iter().enumerate() {
        let reply = service.search_versioned(&KeywordQuery::from_terms(terms.clone()), K);
        assert_eq!(reply.epoch.0 as usize, plan.batches.len());
        assert_eq!(canon(&reply.answers), oracles[plan.batches.len()][j]);
    }
}
