//! Crash-recovery equivalence suite — the correctness spine of the
//! durability path (**Hot path 6**).
//!
//! A durable `SearchService` is killed — deterministically, via the
//! fault-injection plan — at every point of the WAL/checkpoint path:
//! mid-WAL-append (torn record on disk), wal-rollback-fail (torn record
//! durable *and* the append rollback failed, poisoning the log handle),
//! post-append/pre-swap (record durable, epoch never published),
//! mid-checkpoint (partial temp file), and post-checkpoint/pre-truncate
//! (snapshot and log overlap). For each kill
//! point × each datagen fixture, `SearchService::open` must recover exactly
//! the durable prefix: replies byte-identical (bit-exact score bits) to a
//! never-crashed cold oracle of the same batch count, and the recovered
//! store byte-identical as a whole — a torn or unpublished batch is either
//! fully visible or fully absent, never partial. The torn-tail test
//! additionally truncates a log at *every byte boundary* of its final
//! record and reopens each prefix end to end.

use keybridge::core::{
    scan_wal, DurabilityError, DurableOptions, FaultPoint, IngestError, InterpreterConfig,
    KeywordQuery, RankedAnswer, SearchService, SearchSnapshot, TemplateCatalog, SNAPSHOT_FILE,
    WAL_FILE,
};
use keybridge::datagen::{
    holdout_plan, FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, IngestConfig,
    LyricsConfig, LyricsDataset, Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::index::{InvertedIndex, Tokenizer};
use keybridge::relstore::{Database, RowBatch, SchemaBuilder, TableKind, Value};
use std::path::PathBuf;
use std::sync::Arc;

const K: usize = 5;

const KILL_POINTS: [FaultPoint; 5] = [
    FaultPoint::MidWalAppend,
    FaultPoint::WalRollbackFail,
    FaultPoint::PostWalAppendPreSwap,
    FaultPoint::MidCheckpoint,
    FaultPoint::PostCheckpointPreTruncate,
];

/// Render one answer list with bit-exact scores so "identical" means
/// identical.
fn canon(answers: &[RankedAnswer]) -> String {
    let mut out = String::new();
    for a in answers {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x} jtt={:?} keys={:?}\n",
            a.interpretation.template,
            a.interpretation.bindings,
            a.log_score.to_bits(),
            a.jtt,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

/// Cold oracle: a fresh index + single-threaded interpreter over `db`.
fn cold_answers(db: &Database, catalog: &TemplateCatalog, queries: &[Vec<String>]) -> Vec<String> {
    let index = InvertedIndex::build(db);
    let interp =
        keybridge::core::Interpreter::new(db, &index, catalog, InterpreterConfig::default());
    queries
        .iter()
        .map(|terms| canon(&interp.answers_top_k(&KeywordQuery::from_terms(terms.clone()), K)))
        .collect()
}

/// A fresh store directory for one recovery case. Honors
/// `KEYBRIDGE_RECOVERY_DIR` (CI points it into the runner temp dir so the
/// store files of a *failing* case — the suite removes passing ones — get
/// uploaded as the debugging artifact).
fn test_dir(tag: &str) -> PathBuf {
    let root = std::env::var_os("KEYBRIDGE_RECOVERY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("keybridge-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::create_dir_all(&root);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything the crash-equivalence matrix compares against, per number of
/// durable batches: cold answers plus whole-store snapshot bytes.
struct Oracle {
    answers: Vec<Vec<String>>,
    db_bytes: Vec<Vec<u8>>,
    index_bytes: Vec<Vec<u8>>,
}

impl Oracle {
    fn build(
        initial: &Database,
        batches: &[RowBatch],
        catalog: &TemplateCatalog,
        queries: &[Vec<String>],
    ) -> Oracle {
        let mut db = initial.clone();
        let mut answers = vec![cold_answers(&db, catalog, queries)];
        let mut db_bytes = vec![db.snapshot_bytes().unwrap()];
        let mut index_bytes = vec![InvertedIndex::build(&db).snapshot_bytes().unwrap()];
        for batch in batches {
            db.insert_batch(batch).unwrap();
            answers.push(cold_answers(&db, catalog, queries));
            db_bytes.push(db.snapshot_bytes().unwrap());
            index_bytes.push(InvertedIndex::build(&db).snapshot_bytes().unwrap());
        }
        Oracle {
            answers,
            db_bytes,
            index_bytes,
        }
    }
}

/// The matrix body for one fixture: for every kill point, boot a durable
/// service, ingest one batch, kill it at the point, recover, and assert the
/// recovered service equals the never-crashed oracle of the durable batch
/// count — answers and whole store, byte for byte. Then finish the schedule
/// through the recovered service and assert the final state too.
fn assert_crash_equivalence(
    full_db: &Database,
    queries: &[Vec<String>],
    max_joins: usize,
    fixture: &str,
) {
    let plan = holdout_plan(
        full_db,
        IngestConfig {
            seed: 17,
            holdout: 0.3,
            batches: 3,
        },
    );
    assert!(plan.batches.len() >= 3, "matrix needs three batches");
    let catalog = TemplateCatalog::enumerate(full_db, max_joins, 50_000).unwrap();
    let opts = DurableOptions {
        checkpoint_every: 0,
        config: InterpreterConfig::default(),
        max_joins,
        max_templates: 50_000,
    };
    let oracle = Oracle::build(&plan.initial, &plan.batches, &catalog, queries);

    for point in KILL_POINTS {
        let dir = test_dir(&format!("{fixture}-{point}"));
        let service = SearchService::start_durable(
            Arc::new(SearchSnapshot::new(
                plan.initial.clone(),
                InvertedIndex::build(&plan.initial),
                catalog.clone(),
                InterpreterConfig::default(),
            )),
            2,
            &dir,
            &opts,
        )
        .unwrap();
        service.ingest(&plan.batches[0]).unwrap();
        service.fault_plan().expect("durable service").arm(point);

        // Trigger the kill and work out how many batches are durable.
        let durable: usize = match point {
            FaultPoint::MidWalAppend
            | FaultPoint::WalRollbackFail
            | FaultPoint::PostWalAppendPreSwap => {
                let err = service.ingest(&plan.batches[1]).unwrap_err();
                match err {
                    IngestError::Durability(DurabilityError::FaultInjected(p)) => {
                        assert_eq!(p, point)
                    }
                    other => panic!("expected injected fault at {point}, got {other:?}"),
                }
                // The epoch was never published either way.
                assert_eq!(service.current_epoch().0, 1, "at {point}");
                if point == FaultPoint::PostWalAppendPreSwap {
                    2 // the record is durable: recovery must surface it
                } else {
                    1 // the record is torn: the batch is lost
                }
            }
            FaultPoint::MidCheckpoint | FaultPoint::PostCheckpointPreTruncate => {
                service.ingest(&plan.batches[1]).unwrap();
                let err = service.checkpoint().unwrap_err();
                match err {
                    DurabilityError::FaultInjected(p) => assert_eq!(p, point),
                    other => panic!("expected injected fault at {point}, got {other:?}"),
                }
                2
            }
        };

        // The "dead" process refuses all further writes…
        assert!(service.is_poisoned(), "at {point}");
        assert!(
            matches!(service.ingest(&plan.batches[2]), Err(IngestError::Poisoned)),
            "poisoned service accepted a batch at {point}"
        );
        assert!(
            matches!(service.checkpoint(), Err(DurabilityError::Poisoned)),
            "poisoned service checkpointed at {point}"
        );
        // …but keeps serving reads from the last published epoch.
        let _ = service.search(&KeywordQuery::from_terms(queries[0].clone()), K);
        drop(service);

        if matches!(
            point,
            FaultPoint::MidWalAppend | FaultPoint::WalRollbackFail
        ) {
            let scan = scan_wal(&dir).unwrap();
            assert!(scan.torn_bytes > 0, "{point} kill left no torn tail");
        }

        // Recover and compare against the never-crashed oracle.
        let recovered = SearchService::open(&dir, 2, &opts).unwrap();
        assert_eq!(recovered.current_epoch().0 as usize, durable, "at {point}");
        let expected_replayed = match point {
            FaultPoint::MidWalAppend | FaultPoint::WalRollbackFail => 1,
            FaultPoint::PostWalAppendPreSwap | FaultPoint::MidCheckpoint => 2,
            FaultPoint::PostCheckpointPreTruncate => 0, // all checkpointed
        };
        assert_eq!(
            recovered.stats().recovery_replayed_batches,
            expected_replayed,
            "at {point}"
        );
        for (qi, terms) in queries.iter().enumerate() {
            let reply = recovered.search_versioned(&KeywordQuery::from_terms(terms.clone()), K);
            assert_eq!(reply.epoch.0 as usize, durable, "query {qi} at {point}");
            assert_eq!(
                canon(&reply.answers),
                oracle.answers[durable][qi],
                "recovered answers diverged from the never-crashed oracle \
                 (fixture {fixture}, kill point {point}, query {terms:?})"
            );
        }
        // No partial apply: the recovered store equals the oracle's as a
        // whole, byte for byte — database and incrementally-replayed index.
        let snap = recovered.snapshot();
        assert_eq!(
            snap.db.snapshot_bytes().unwrap(),
            oracle.db_bytes[durable],
            "recovered database not byte-identical at {point}"
        );
        assert_eq!(
            snap.index.snapshot_bytes().unwrap(),
            oracle.index_bytes[durable],
            "recovered index not byte-identical at {point}"
        );

        // The recovered service is fully live: finish the schedule and land
        // on the final oracle.
        for batch in &plan.batches[durable..] {
            recovered.ingest(batch).unwrap();
        }
        assert_eq!(recovered.current_epoch().0 as usize, plan.batches.len());
        for (qi, terms) in queries.iter().enumerate() {
            let reply = recovered.search_versioned(&KeywordQuery::from_terms(terms.clone()), K);
            assert_eq!(
                canon(&reply.answers),
                oracle.answers[plan.batches.len()][qi],
                "post-recovery ingest diverged (fixture {fixture}, kill point {point}, query {qi})"
            );
        }
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Seeded keyword log + full database for a fixture with a real workload
/// generator.
fn imdb_fixture() -> (Database, Vec<Vec<String>>) {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    (data.db, queries)
}

fn lyrics_fixture() -> (Database, Vec<Vec<String>>) {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 6,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    (data.db, queries)
}

/// First tokens of the leading rows of `table` as single-keyword queries.
fn token_log(db: &Database, table: keybridge::relstore::TableId, n: usize) -> Vec<Vec<String>> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for i in 0..db.table(table).len().min(12) as u32 {
        let row = db.table(table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap_or(""));
        if let Some(t) = toks.first() {
            out.push(vec![t.clone()]);
        }
        if out.len() >= n {
            break;
        }
    }
    assert!(!out.is_empty(), "no tokens drawn from fixture");
    out
}

fn freebase_fixture() -> (Database, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let queries = token_log(&fb.db, fb.topic, 5);
    (fb.db, queries)
}

fn yago_fixture() -> (Database, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let queries = token_log(&fb.db, yago.gold[0].1, 4);
    (fb.db, queries)
}

#[test]
fn crash_equivalence_imdb_all_kill_points() {
    let (db, queries) = imdb_fixture();
    assert_crash_equivalence(&db, &queries, 4, "imdb");
}

#[test]
fn crash_equivalence_lyrics_all_kill_points() {
    let (db, queries) = lyrics_fixture();
    assert_crash_equivalence(&db, &queries, 4, "lyrics");
}

#[test]
fn crash_equivalence_freebase_all_kill_points() {
    let (db, queries) = freebase_fixture();
    assert_crash_equivalence(&db, &queries, 2, "freebase");
}

#[test]
fn crash_equivalence_yago_all_kill_points() {
    let (db, queries) = yago_fixture();
    assert_crash_equivalence(&db, &queries, 2, "yago");
}

/// End-to-end torn-tail coverage: take a store whose log holds two records,
/// truncate the log at **every byte boundary** of the second record, and
/// reopen each prefix through `SearchService::open`. Every cut strictly
/// inside the record must recover exactly the one-batch state (the torn
/// record fully discarded, never partially applied); the full length must
/// recover both.
#[test]
fn torn_wal_tail_at_every_byte_recovers_prefix() {
    let mut b = SchemaBuilder::new();
    b.table("doc", TableKind::Entity).pk("id").text_attr("body");
    let mut db = Database::new(b.finish().unwrap());
    let doc = db.schema().table_id("doc").unwrap();
    db.insert(doc, vec![Value::Int(1), Value::text("seed row alpha")])
        .unwrap();
    let catalog = TemplateCatalog::enumerate(&db, 1, 100).unwrap();
    let opts = DurableOptions {
        checkpoint_every: 0,
        config: InterpreterConfig::default(),
        max_joins: 1,
        max_templates: 100,
    };
    let batches: Vec<RowBatch> = vec![
        vec![
            (doc, vec![Value::Int(2), Value::text("bravo charlie")]),
            (doc, vec![Value::Int(3), Value::text("delta echo")]),
        ],
        vec![(doc, vec![Value::Int(4), Value::text("foxtrot golf")])],
    ];
    let queries: Vec<Vec<String>> = vec![
        vec!["alpha".into()],
        vec!["delta".into()],
        vec!["foxtrot".into()],
    ];
    let oracle = Oracle::build(&db, &batches, &catalog, &queries);

    // Build the master store: two logged batches, no checkpoint.
    let master = test_dir("torn-master");
    let service = SearchService::start_durable(
        Arc::new(SearchSnapshot::new(
            db.clone(),
            InvertedIndex::build(&db),
            catalog.clone(),
            InterpreterConfig::default(),
        )),
        1,
        &master,
        &opts,
    )
    .unwrap();
    service.ingest(&batches[0]).unwrap();
    let len_one = std::fs::metadata(master.join(WAL_FILE)).unwrap().len();
    service.ingest(&batches[1]).unwrap();
    let len_two = std::fs::metadata(master.join(WAL_FILE)).unwrap().len();
    drop(service);
    assert!(len_two > len_one, "second record added no bytes");
    let full_wal = std::fs::read(master.join(WAL_FILE)).unwrap();
    let snapshot_file = std::fs::read(master.join(SNAPSHOT_FILE)).unwrap();

    let case = test_dir("torn-case");
    std::fs::create_dir_all(&case).unwrap();
    for cut in len_one..=len_two {
        std::fs::write(case.join(SNAPSHOT_FILE), &snapshot_file).unwrap();
        std::fs::write(case.join(WAL_FILE), &full_wal[..cut as usize]).unwrap();
        let expected_batches = if cut < len_two { 1 } else { 2 };

        let recovered = SearchService::open(&case, 1, &opts).unwrap();
        assert_eq!(
            recovered.current_epoch().0 as usize,
            expected_batches,
            "cut at byte {cut}"
        );
        assert_eq!(
            recovered.stats().recovery_replayed_batches,
            expected_batches,
            "cut at byte {cut}"
        );
        let snap = recovered.snapshot();
        assert_eq!(
            snap.db.snapshot_bytes().unwrap(),
            oracle.db_bytes[expected_batches],
            "partial batch visible after cut at byte {cut}"
        );
        assert_eq!(
            snap.index.snapshot_bytes().unwrap(),
            oracle.index_bytes[expected_batches],
            "index diverged after cut at byte {cut}"
        );
        for (qi, terms) in queries.iter().enumerate() {
            let reply = recovered.search_versioned(&KeywordQuery::from_terms(terms.clone()), K);
            assert_eq!(
                canon(&reply.answers),
                oracle.answers[expected_batches][qi],
                "cut at byte {cut}, query {qi}"
            );
        }
        // Reopening truncated the torn tail, so the log is clean again.
        drop(recovered);
        let scan = scan_wal(&case).unwrap();
        assert_eq!(scan.torn_bytes, 0, "cut at byte {cut} left torn bytes");
        assert_eq!(scan.records.len(), expected_batches, "cut at byte {cut}");
    }
    std::fs::remove_dir_all(&case).unwrap();
    std::fs::remove_dir_all(&master).unwrap();
}
