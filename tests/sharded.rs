//! Sharded scatter-gather correctness: a K-shard `ShardedService` must be
//! **byte-identical** — same interpretations, bit-exact scores, same joining
//! tuple trees in global row ids, same key sets, same order — to the
//! single-shard oracle on all four datagen fixtures, under concurrent
//! mixed-mode load and while a writer swaps shard epochs mid-replay. Plus
//! the routing contract (a batch touching shards {i, j} bumps *only* those
//! shards' epochs) and the legacy-wrapper ⇔ `Request`-enum equivalence of
//! the unified serving seam.

use keybridge::core::{
    DiversifiedReply, DiversifyOptions, InterpreterConfig, KeywordQuery, RankedAnswer, Reply,
    Request, ScoredInterpretation, SearchService, SearchSnapshot, ServeRequests, ServiceBuilder,
    ShardedService, TemplateCatalog,
};
use keybridge::datagen::{
    sharded_holdout_plan, FreebaseConfig, FreebaseDataset, ImdbConfig, ImdbDataset, IngestConfig,
    LyricsConfig, LyricsDataset, Workload, WorkloadConfig, YagoConfig, YagoOntology,
};
use keybridge::index::{InvertedIndex, Tokenizer};
use std::sync::Arc;

const SHARDS: usize = 4;

/// Render one answer with bit-exact scores so "identical" means identical.
fn canon(answers: &[RankedAnswer]) -> String {
    let mut out = String::new();
    for a in answers {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x} jtt={:?} keys={:?}\n",
            a.interpretation.template,
            a.interpretation.bindings,
            a.log_score.to_bits(),
            a.jtt,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

/// Bit-exact rendering of a diversified reply (modulo uncompared stats).
fn canon_div(reply: &DiversifiedReply) -> String {
    let mut out = format!("pool={}\n", reply.pool);
    for a in &reply.answers {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x} rel_bits={:016x} rank={} atoms={:?} keys={:?}\n",
            a.interpretation.template,
            a.interpretation.bindings,
            a.log_score.to_bits(),
            a.relevance.to_bits(),
            a.pool_rank,
            a.atoms,
            a.keys.iter().map(|k| (k.table, k.pk)).collect::<Vec<_>>(),
        ));
    }
    out
}

fn canon_interps(interps: &[ScoredInterpretation]) -> String {
    let mut out = String::new();
    for s in interps {
        out.push_str(&format!(
            "tpl={:?} bindings={:?} score_bits={:016x}\n",
            s.interpretation.template,
            s.interpretation.bindings,
            s.log_score.to_bits(),
        ));
    }
    out
}

/// The cold single-threaded reference: a fresh interpreter per query.
fn reference(snapshot: &SearchSnapshot, queries: &[Vec<String>], k: usize) -> Vec<String> {
    queries
        .iter()
        .map(|terms| {
            let q = KeywordQuery::from_terms(terms.clone());
            canon(&snapshot.interpreter().answers_top_k(&q, k))
        })
        .collect()
}

// --- fixtures (same seeds as tests/service.rs) ------------------------------

fn imdb_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn lyrics_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let data = LyricsDataset::generate(LyricsConfig::tiny(7)).unwrap();
    let w = Workload::lyrics(
        &data,
        WorkloadConfig {
            seed: 21,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let snap = SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn token_log(
    db: &keybridge::relstore::Database,
    table: keybridge::relstore::TableId,
    n: usize,
) -> Vec<Vec<String>> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for i in 0..db.table(table).len().min(12) as u32 {
        let row = db.table(table).row(keybridge::relstore::RowId(i));
        let toks = tok.tokenize(row[1].as_text().unwrap_or(""));
        if let Some(t) = toks.first() {
            out.push(vec![t.clone()]);
        }
        if out.len() >= n {
            break;
        }
    }
    assert!(!out.is_empty(), "no tokens drawn from fixture");
    out
}

fn freebase_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 300,
        rows_per_table: 12,
        seed: 5,
        scale: 1.0,
    })
    .unwrap();
    let queries = token_log(&fb.db, fb.topic, 6);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

fn yago_log() -> (Arc<SearchSnapshot>, Vec<Vec<String>>) {
    let fb = FreebaseDataset::generate(FreebaseConfig {
        domains: 6,
        types_per_domain: 4,
        topics: 400,
        rows_per_table: 15,
        seed: 31,
        scale: 1.0,
    })
    .unwrap();
    let yago = YagoOntology::generate(YagoConfig::tiny(32), &fb);
    let queries = token_log(&fb.db, yago.gold[0].1, 5);
    let snap = SearchSnapshot::build(fb.db, InterpreterConfig::default(), 2, 50_000).unwrap();
    (Arc::new(snap), queries)
}

// --- scatter-gather differential --------------------------------------------

/// Replay `queries` through a K=4 sharded service from `clients` concurrent
/// threads, mixing answer and diversified requests, and assert every reply
/// is byte-identical to the single-shard cold oracle.
fn assert_sharded_identical(
    snapshot: Arc<SearchSnapshot>,
    queries: &[Vec<String>],
    workers: usize,
    clients: usize,
    k: usize,
) {
    let expected = Arc::new(reference(&snapshot, queries, k));
    // Diversified oracle: the single-shard service (itself proven identical
    // to the pipeline in tests/diversify.rs).
    let single = SearchService::start(Arc::clone(&snapshot), workers);
    let expected_div: Arc<Vec<String>> = Arc::new(
        queries
            .iter()
            .map(|terms| {
                let q = KeywordQuery::from_terms(terms.clone());
                canon_div(&single.search_diversified(&q, DiversifyOptions::default()))
            })
            .collect(),
    );
    drop(single);

    let service = ServiceBuilder::new()
        .workers(workers)
        .shards(SHARDS)
        .start(snapshot)
        .unwrap();
    let sharded = service.as_sharded().expect("shards(4) builds sharded");
    assert_eq!(sharded.shard_count(), SHARDS);
    let service = Arc::new(service);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            let expected_div = Arc::clone(&expected_div);
            let queries = queries.to_vec();
            scope.spawn(move || {
                for i in 0..queries.len() {
                    let j = (i + c * 3) % queries.len();
                    let q = KeywordQuery::from_terms(queries[j].clone());
                    let reply = service.search_versioned(&q, k);
                    assert_eq!(
                        reply.shard_epochs.len(),
                        SHARDS,
                        "reply must carry the per-shard epoch vector"
                    );
                    assert_eq!(
                        canon(&reply.answers),
                        expected[j],
                        "client {c}: query {:?} diverged from the single-shard oracle",
                        queries[j]
                    );
                    // Every other query doubles as a diversified probe.
                    if i % 2 == c % 2 {
                        let div = service.search_diversified(&q, DiversifyOptions::default());
                        assert_eq!(div.shard_epochs.len(), SHARDS);
                        assert_eq!(
                            canon_div(&div),
                            expected_div[j],
                            "client {c}: diversified {:?} diverged",
                            queries[j]
                        );
                    }
                }
            });
        }
    });
    let stats = service.service_stats();
    assert!(stats.served >= clients * queries.len());
    assert!(stats.nonempty_entries > 0, "shared cache never populated");
}

#[test]
fn sharded_identical_imdb() {
    let (snap, queries) = imdb_log();
    assert_sharded_identical(snap, &queries, 4, 4, 5);
}

#[test]
fn sharded_identical_lyrics() {
    let (snap, queries) = lyrics_log();
    assert_sharded_identical(snap, &queries, 4, 4, 5);
}

#[test]
fn sharded_identical_freebase() {
    let (snap, queries) = freebase_log();
    assert_sharded_identical(snap, &queries, 4, 4, 5);
}

#[test]
fn sharded_identical_yago() {
    let (snap, queries) = yago_log();
    assert_sharded_identical(snap, &queries, 4, 4, 5);
}

// --- routing: only touched shards swap epochs --------------------------------

#[test]
fn ingest_bumps_only_touched_shard_epochs() {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let sharded_plan = sharded_holdout_plan(
        &data.db,
        IngestConfig {
            seed: 77,
            holdout: 0.25,
            batches: 4,
        },
        SHARDS,
    );
    let plan = &sharded_plan.plan;
    let schema = data.db.schema().clone();
    let snap = Arc::new(
        SearchSnapshot::build(
            plan.initial.clone(),
            InterpreterConfig::default(),
            4,
            50_000,
        )
        .unwrap(),
    );
    let service = ShardedService::start_with_assignment(snap, sharded_plan.assignment.clone(), 2);

    let mut expected_swaps = 0usize;
    let mut touched_union = std::collections::BTreeSet::new();
    for (b, batch) in plan.batches.iter().enumerate() {
        // The full-corpus directory pins every held-out row's shard, so the
        // touched set is known before the ingest.
        let touched: std::collections::BTreeSet<usize> = batch
            .iter()
            .map(|(t, row)| {
                let pk = row[schema.table(*t).pk.0 as usize].as_int().unwrap();
                sharded_plan
                    .assignment
                    .shard_of(*t, pk)
                    .expect("full-corpus directory covers held-out rows")
            })
            .collect();
        assert!(!touched.is_empty());

        let before = service.shard_epochs();
        let receipt = service.ingest(batch).unwrap();
        let after = service.shard_epochs();
        assert_eq!(receipt.epoch.0, b as u64 + 1, "one global epoch per batch");
        assert_eq!(receipt.rows, batch.len());
        for s in 0..SHARDS {
            if touched.contains(&s) {
                assert_eq!(
                    after[s].0,
                    before[s].0 + 1,
                    "batch {b}: touched shard {s} must advance exactly once"
                );
            } else {
                assert_eq!(
                    after[s], before[s],
                    "batch {b}: untouched shard {s} must keep its epoch"
                );
            }
        }
        expected_swaps += touched.len();
        touched_union.extend(touched);
    }
    let stats = service.service_stats();
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    assert_eq!(stats.shard_epoch_swaps, expected_swaps);
    assert_eq!(stats.shards_touched, touched_union.len());
    assert_eq!(stats.rows_ingested, plan.total_rows());
    assert!(
        expected_swaps < plan.batches.len() * SHARDS || SHARDS == 1,
        "fixture too dense: every batch touched every shard, isolation unobserved"
    );
}

// --- writer swaps shard epochs mid-replay ------------------------------------

/// Eight clients replay an overlapping log through a K=4 sharded service
/// while a writer ingests batches mid-replay. Every reply must match the
/// *unsharded* cold oracle of exactly the global epoch it reports.
#[test]
fn sharded_writer_swaps_epochs_mid_replay() {
    let data = ImdbDataset::generate(ImdbConfig::tiny(99)).unwrap();
    let w = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 123,
            n_queries: 8,
            mc_fraction: 0.5,
        },
    );
    let queries: Vec<Vec<String>> = w.queries.iter().map(|q| q.keywords.clone()).collect();
    let k = 5;
    let sharded_plan = sharded_holdout_plan(
        &data.db,
        IngestConfig {
            seed: 77,
            holdout: 0.25,
            batches: 4,
        },
        SHARDS,
    );
    let plan = &sharded_plan.plan;
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();

    // One cold unsharded single-threaded oracle per epoch.
    let mut oracle_db = plan.initial.clone();
    let oracle_for = |db: &keybridge::relstore::Database| -> Vec<String> {
        let index = InvertedIndex::build(db);
        let snap = SearchSnapshot::new(
            db.clone(),
            index,
            catalog.clone(),
            InterpreterConfig::default(),
        );
        queries
            .iter()
            .map(|terms| {
                let q = KeywordQuery::from_terms(terms.clone());
                canon(&snap.interpreter().answers_top_k(&q, k))
            })
            .collect()
    };
    let mut oracles: Vec<Vec<String>> = vec![oracle_for(&oracle_db)];
    for batch in &plan.batches {
        oracle_db.insert_batch(batch).unwrap();
        oracles.push(oracle_for(&oracle_db));
    }

    let service = Arc::new(ShardedService::start_with_assignment(
        Arc::new(SearchSnapshot::new(
            plan.initial.clone(),
            InvertedIndex::build(&plan.initial),
            catalog,
            InterpreterConfig::default(),
        )),
        sharded_plan.assignment.clone(),
        4,
    ));

    // Warm epoch 0 before the race so the first swap provably displaces a
    // populated cache generation.
    let warm = service.search_versioned(&KeywordQuery::from_terms(queries[0].clone()), k);
    assert_eq!(canon(&warm.answers), oracles[0][0]);

    std::thread::scope(|scope| {
        for c in 0..8usize {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let oracles = &oracles;
            scope.spawn(move || {
                for pass in 0..2 {
                    for i in 0..queries.len() {
                        let j = if c % 2 == 0 {
                            (i + c) % queries.len()
                        } else {
                            (queries.len() - 1 + c - i) % queries.len()
                        };
                        let q = KeywordQuery::from_terms(queries[j].clone());
                        let reply = service.search_versioned(&q, k);
                        let epoch = reply.epoch.0 as usize;
                        assert!(epoch < oracles.len(), "impossible epoch {epoch}");
                        assert_eq!(
                            canon(&reply.answers),
                            oracles[epoch][j],
                            "pass {pass} client {c}: {:?} does not match the \
                             epoch-{epoch} unsharded oracle — sharding or \
                             cross-epoch state leaked",
                            queries[j]
                        );
                    }
                }
            });
        }
        let writer = Arc::clone(&service);
        let batches = plan.batches.clone();
        scope.spawn(move || {
            for batch in &batches {
                std::thread::sleep(std::time::Duration::from_millis(3));
                writer.ingest(batch).unwrap();
            }
        });
    });

    let stats = service.service_stats();
    assert_eq!(stats.epoch_swaps, plan.batches.len());
    assert_eq!(stats.epoch, plan.batches.len() as u64);
    assert!(stats.shard_epoch_swaps >= stats.epoch_swaps);
    assert!(stats.stale_evictions > 0, "swaps displaced no cached state");
    // The settled service serves the final epoch, byte-identical to the
    // full-fixture unsharded oracle.
    for (j, terms) in queries.iter().enumerate() {
        let reply = service.search_versioned(&KeywordQuery::from_terms(terms.clone()), k);
        assert_eq!(reply.epoch.0 as usize, plan.batches.len());
        assert_eq!(canon(&reply.answers), oracles[plan.batches.len()][j]);
    }
}

// --- legacy wrappers ⇔ Request enum ------------------------------------------

/// Every legacy convenience wrapper must be byte-equivalent to issuing its
/// `Request` arm through `submit_request` directly — on any implementation
/// of the seam.
fn assert_wrappers_match<S: ServeRequests>(service: &S, queries: &[Vec<String>], k: usize) {
    for terms in queries {
        let q = KeywordQuery::from_terms(terms.clone());

        // Answers: raw enum vs blocking wrapper vs typed submit.
        let raw = match service
            .submit_request(Request::Answers {
                query: q.clone(),
                k,
            })
            .wait()
            .expect("service alive")
        {
            Reply::Answers(Ok(r)) => r,
            _ => panic!("Request::Answers must resolve to Reply::Answers"),
        };
        let wrapped = service.search_versioned(&q, k);
        assert_eq!(canon(&raw.answers), canon(&wrapped.answers));
        assert_eq!(raw.epoch, wrapped.epoch);
        assert_eq!(raw.shard_epochs, wrapped.shard_epochs);
        let typed = service
            .submit(q.clone(), k)
            .wait()
            .expect("service alive")
            .expect("request served");
        assert_eq!(canon(&raw.answers), canon(&typed.answers));
        let (answers, _) = service.search_with_stats(&q, k);
        assert_eq!(canon(&raw.answers), canon(&answers));
        assert_eq!(canon(&raw.answers), canon(&service.search(&q, k)));

        // Timed answers: same payload, plus a stamp.
        let timed = service
            .submit_timed(q.clone(), k)
            .wait()
            .expect("service alive");
        let timed_reply = timed.result.expect("request served");
        assert_eq!(canon(&raw.answers), canon(&timed_reply.answers));
        assert_eq!(raw.epoch, timed_reply.epoch);

        // Interpretations.
        let raw_i = match service
            .submit_request(Request::Interpretations {
                query: q.clone(),
                k,
            })
            .wait()
            .expect("service alive")
        {
            Reply::Interpretations(Ok(r)) => r,
            _ => panic!("Request::Interpretations must resolve to Reply::Interpretations"),
        };
        let typed_i = service
            .submit_interpretations(q.clone(), k)
            .wait()
            .expect("service alive")
            .expect("request served");
        assert_eq!(canon_interps(&raw_i.0), canon_interps(&typed_i.0));

        // Diversified, plain and timed.
        let opts = DiversifyOptions::default();
        let raw_d = match service
            .submit_request(Request::Diversified {
                query: q.clone(),
                opts,
            })
            .wait()
            .expect("service alive")
        {
            Reply::Diversified(Ok(r)) => r,
            _ => panic!("Request::Diversified must resolve to Reply::Diversified"),
        };
        let wrapped_d = service.search_diversified(&q, opts);
        assert_eq!(canon_div(&raw_d), canon_div(&wrapped_d));
        assert_eq!(raw_d.epoch, wrapped_d.epoch);
        assert_eq!(raw_d.shard_epochs, wrapped_d.shard_epochs);
        let timed_d = service
            .submit_diversified_timed(q.clone(), opts)
            .wait()
            .expect("service alive");
        assert_eq!(
            canon_div(&raw_d),
            canon_div(&timed_d.result.expect("served"))
        );
    }
}

/// The wrapper ⇔ enum equivalence on both seam implementations, all four
/// fixtures.
fn assert_wrappers_match_both(snap: Arc<SearchSnapshot>, queries: &[Vec<String>]) {
    let single = SearchService::start(Arc::clone(&snap), 2);
    assert_wrappers_match(&single, queries, 5);
    drop(single);
    let sharded = ShardedService::start(snap, SHARDS, 2);
    assert_wrappers_match(&sharded, queries, 5);
}

#[test]
fn wrappers_match_request_enum_imdb() {
    let (snap, queries) = imdb_log();
    assert_wrappers_match_both(snap, &queries);
}

#[test]
fn wrappers_match_request_enum_lyrics() {
    let (snap, queries) = lyrics_log();
    assert_wrappers_match_both(snap, &queries);
}

#[test]
fn wrappers_match_request_enum_freebase() {
    let (snap, queries) = freebase_log();
    assert_wrappers_match_both(snap, &queries);
}

#[test]
fn wrappers_match_request_enum_yago() {
    let (snap, queries) = yago_log();
    assert_wrappers_match_both(snap, &queries);
}
