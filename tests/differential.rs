//! Differential execution tests: the batched hash-join executor must return
//! exactly the same results as the retained naive nested-loop oracle
//! (`ExecStrategy::Naive`), on randomized schemas, instances, candidate
//! sets, and interpretations — including the two-predicates-on-one-node
//! intersection path and empty-candidate edge cases.
//!
//! Every property runs over `SEEDS` (≥ 3 distinct seeds; CI gates on this
//! suite). Failures reproduce by seed.

use keybridge::core::{
    execute_interpretation, BindingTarget, GenerationStrategy, Interpreter, InterpreterConfig,
    KeywordBinding, KeywordQuery, ProbabilityConfig, QueryInterpretation, TemplateCatalog,
};
use keybridge::index::InvertedIndex;
use keybridge::relstore::{
    execute_join_tree_with_stats, Candidates, Database, ExecOptions, ExecStrategy, JoinTree,
    JoinTreeEdge, JoinedRow, RowId, SchemaBuilder, TableKind, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The differential suite's seed set — at least 3 distinct seeds, per the
/// CI gate.
const SEEDS: [u64; 4] = [11, 23, 47, 91];

/// A random three-table movie-ish schema with skewed, ambiguous text —
/// the same family `tests/properties.rs` uses for the generation oracle.
fn random_db(rng: &mut StdRng) -> Database {
    let mut b = SchemaBuilder::new();
    b.table("actor", TableKind::Entity)
        .pk("id")
        .text_attr("name");
    b.table("movie", TableKind::Entity)
        .pk("id")
        .text_attr("title");
    b.table("acts", TableKind::Relation)
        .pk("id")
        .int_attr("actor_id")
        .int_attr("movie_id");
    b.foreign_key("acts", "actor_id", "actor").unwrap();
    b.foreign_key("acts", "movie_id", "movie").unwrap();
    let mut db = Database::new(b.finish().unwrap());
    let actor = db.schema().table_id("actor").unwrap();
    let movie = db.schema().table_id("movie").unwrap();
    let acts = db.schema().table_id("acts").unwrap();
    const VOCAB: &[&str] = &["tom", "meg", "stone", "london", "terminal", "guest", "fire"];
    let n_actor = rng.gen_range(2..8usize);
    let n_movie = rng.gen_range(2..8usize);
    for i in 0..n_actor {
        let name = format!(
            "{} {}",
            VOCAB[rng.gen_range(0..VOCAB.len())],
            VOCAB[rng.gen_range(0..VOCAB.len())]
        );
        db.insert(actor, vec![Value::Int(i as i64), Value::text(name)])
            .unwrap();
    }
    for i in 0..n_movie {
        let words = rng.gen_range(1..=2usize);
        let title = (0..words)
            .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())])
            .collect::<Vec<_>>()
            .join(" ");
        db.insert(movie, vec![Value::Int(i as i64), Value::text(title)])
            .unwrap();
    }
    for i in 0..rng.gen_range(0..12usize) {
        // Occasionally a null fk, exercising the null-join edge case.
        let a = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..n_actor as i64))
        };
        db.insert(
            acts,
            vec![
                Value::Int(i as i64),
                a,
                Value::Int(rng.gen_range(0..n_movie as i64)),
            ],
        )
        .unwrap();
    }
    db
}

/// The join-tree shapes the differential suite exercises: single node, the
/// 3-node path, and the 5-node self-join.
fn trees(db: &Database) -> Vec<JoinTree> {
    let s = db.schema();
    let actor = s.table_id("actor").unwrap();
    let movie = s.table_id("movie").unwrap();
    let acts = s.table_id("acts").unwrap();
    let fk_actor = s.fks().find(|(_, f)| f.to.table == actor).unwrap().0;
    let fk_movie = s.fks().find(|(_, f)| f.to.table == movie).unwrap().0;
    vec![
        JoinTree::single(movie),
        JoinTree {
            nodes: vec![actor, acts, movie],
            edges: vec![
                JoinTreeEdge {
                    a: 1,
                    b: 0,
                    fk: fk_actor,
                },
                JoinTreeEdge {
                    a: 1,
                    b: 2,
                    fk: fk_movie,
                },
            ],
        },
        JoinTree {
            nodes: vec![actor, acts, movie, acts, actor],
            edges: vec![
                JoinTreeEdge {
                    a: 1,
                    b: 0,
                    fk: fk_actor,
                },
                JoinTreeEdge {
                    a: 1,
                    b: 2,
                    fk: fk_movie,
                },
                JoinTreeEdge {
                    a: 3,
                    b: 2,
                    fk: fk_movie,
                },
                JoinTreeEdge {
                    a: 3,
                    b: 4,
                    fk: fk_actor,
                },
            ],
        },
    ]
}

/// Random per-node candidates: free, a random sorted subset, or (sometimes)
/// explicitly empty.
fn random_candidates(rng: &mut StdRng, db: &Database, tree: &JoinTree) -> Candidates {
    let mut c = Candidates::free(tree.nodes.len());
    for i in 0..tree.nodes.len() {
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            continue; // free node
        }
        let len = db.table(tree.nodes[i]).len();
        let rows: Vec<RowId> = if roll < 0.55 || len == 0 {
            Vec::new() // empty candidate set
        } else {
            (0..len as u32)
                .filter(|_| rng.gen_bool(0.5))
                .map(RowId)
                .collect()
        };
        c = c.restrict(i, rows);
    }
    c
}

fn sorted(mut rows: Vec<JoinedRow>) -> Vec<JoinedRow> {
    rows.sort();
    rows
}

fn opts(strategy: ExecStrategy) -> ExecOptions {
    ExecOptions {
        limit: usize::MAX,
        strategy,
        ..Default::default()
    }
}

#[test]
fn join_tree_execution_matches_naive_oracle() {
    let mut total_hj_intermediates = 0usize;
    let mut total_nv_intermediates = 0usize;
    let mut nonempty_cases = 0usize;
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..20 {
            let db = random_db(&mut rng);
            for (ti, tree) in trees(&db).iter().enumerate() {
                let cands = random_candidates(&mut rng, &db, tree);
                let note = format!("seed {seed} case {case} tree {ti}");
                let hj =
                    execute_join_tree_with_stats(&db, tree, &cands, opts(ExecStrategy::HashJoin))
                        .unwrap_or_else(|e| panic!("{note}: hash join failed: {e}"));
                let nv = execute_join_tree_with_stats(&db, tree, &cands, opts(ExecStrategy::Naive))
                    .unwrap_or_else(|e| panic!("{note}: naive failed: {e}"));
                assert_eq!(
                    sorted(hj.rows.clone()),
                    sorted(nv.rows.clone()),
                    "{note}: result multisets differ"
                );
                assert_eq!(hj.stats.result_count, nv.stats.result_count, "{note}");
                if !hj.rows.is_empty() {
                    nonempty_cases += 1;
                }
                total_hj_intermediates += hj.stats.intermediate_bindings;
                total_nv_intermediates += nv.stats.intermediate_bindings;

                // count_only agrees with the materialized count.
                let co = execute_join_tree_with_stats(
                    &db,
                    tree,
                    &cands,
                    ExecOptions {
                        count_only: true,
                        ..opts(ExecStrategy::HashJoin)
                    },
                )
                .unwrap();
                assert!(co.rows.is_empty(), "{note}: count_only returned rows");
                assert_eq!(
                    co.stats.result_count,
                    hj.rows.len(),
                    "{note}: count_only count"
                );

                // limit caps results and the result set stays a subset.
                let limited = execute_join_tree_with_stats(
                    &db,
                    tree,
                    &cands,
                    ExecOptions {
                        limit: 2,
                        strategy: ExecStrategy::HashJoin,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert!(limited.rows.len() <= 2, "{note}: limit violated");
                assert_eq!(
                    limited.rows.len(),
                    hj.rows.len().min(2),
                    "{note}: limit under-delivered"
                );
                let all = sorted(hj.rows);
                for r in &limited.rows {
                    assert!(
                        all.binary_search(r).is_ok(),
                        "{note}: limited row not in full result"
                    );
                }
            }
        }
    }
    assert!(
        nonempty_cases >= 30,
        "corpus too degenerate: {nonempty_cases}"
    );
    // The batched executor's whole point: across the corpus it materializes
    // no more intermediate bindings than the naive oracle.
    assert!(
        total_hj_intermediates <= total_nv_intermediates,
        "hash join materialized more bindings overall: {total_hj_intermediates} vs {total_nv_intermediates}"
    );
}

/// A random 1–4 keyword query over the vocabulary.
fn random_query(rng: &mut StdRng) -> KeywordQuery {
    const POOL: &[&str] = &[
        "tom", "meg", "stone", "london", "terminal", "guest", "fire", "actor", "movie", "title",
        "name", "zzzz",
    ];
    let n = rng.gen_range(1..=4usize);
    KeywordQuery::from_terms(
        (0..n)
            .map(|_| POOL[rng.gen_range(0..POOL.len())].to_owned())
            .collect(),
    )
}

#[test]
fn interpretation_execution_matches_naive_oracle() {
    let mut executed = 0usize;
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        for case in 0..12 {
            let db = random_db(&mut rng);
            let index = InvertedIndex::build(&db);
            let catalog = TemplateCatalog::enumerate(&db, 3, 10_000).unwrap();
            let config = InterpreterConfig {
                prob: ProbabilityConfig {
                    unmapped_prob: 1e-4,
                    ..Default::default()
                },
                ..Default::default()
            };
            let interp = Interpreter::new(&db, &index, &catalog, config);
            let query = random_query(&mut rng);
            let note = format!("seed {seed} case {case} query \"{query}\"");
            for qi in interp.enumerate_interpretations(&query).iter().take(40) {
                let hj =
                    execute_interpretation(&db, &index, &catalog, qi, opts(ExecStrategy::HashJoin))
                        .unwrap();
                let nv =
                    execute_interpretation(&db, &index, &catalog, qi, opts(ExecStrategy::Naive))
                        .unwrap();
                assert_eq!(
                    sorted(hj.jtts.clone()),
                    sorted(nv.jtts.clone()),
                    "{note}: JTT multisets differ for {qi:?}"
                );
                assert_eq!(hj.keys, nv.keys, "{note}: ResultKey sets differ");
                assert_eq!(hj.all_keys, nv.all_keys, "{note}: all_keys differ");
                executed += 1;
            }
        }
    }
    assert!(
        executed >= 100,
        "too few interpretations executed: {executed}"
    );
}

/// The two-predicates-on-one-node intersection path: separate keyword bags
/// bound to the same node must intersect identically under both strategies,
/// including empty intersections.
#[test]
fn same_node_intersection_matches_oracle() {
    const VOCAB: &[&str] = &["tom", "meg", "stone", "london", "terminal", "guest", "fire"];
    let mut checked = 0usize;
    let mut nonempty = 0usize;
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(104729));
        for _case in 0..10 {
            let db = random_db(&mut rng);
            let index = InvertedIndex::build(&db);
            let catalog = TemplateCatalog::enumerate(&db, 3, 10_000).unwrap();
            let actor = db.schema().table_id("actor").unwrap();
            let name = db.schema().resolve("actor", "name").unwrap().attr;
            let kw_a = VOCAB[rng.gen_range(0..VOCAB.len())].to_owned();
            let kw_b = VOCAB[rng.gen_range(0..VOCAB.len())].to_owned();
            for tpl in catalog.iter() {
                let Some(&node) = tpl.nodes_of_table(actor).first() else {
                    continue;
                };
                if tpl.tree.nodes.len() > 3 {
                    continue;
                }
                let qi = QueryInterpretation::new(
                    tpl.id,
                    vec![
                        KeywordBinding {
                            keywords: vec![kw_a.clone()],
                            target: BindingTarget::Value { node, attr: name },
                        },
                        KeywordBinding {
                            keywords: vec![kw_b.clone()],
                            target: BindingTarget::Value { node, attr: name },
                        },
                    ],
                );
                let hj = execute_interpretation(
                    &db,
                    &index,
                    &catalog,
                    &qi,
                    opts(ExecStrategy::HashJoin),
                )
                .unwrap();
                let nv =
                    execute_interpretation(&db, &index, &catalog, &qi, opts(ExecStrategy::Naive))
                        .unwrap();
                assert_eq!(
                    sorted(hj.jtts.clone()),
                    sorted(nv.jtts),
                    "seed {seed} {kw_a}+{kw_b} on template {:?}",
                    tpl.id
                );
                assert_eq!(hj.keys, nv.keys);
                checked += 1;
                if !hj.jtts.is_empty() {
                    nonempty += 1;
                }
            }
        }
    }
    assert!(checked >= 50, "too few intersection cases: {checked}");
    assert!(nonempty >= 5, "intersection corpus degenerate: {nonempty}");
}

/// End-to-end: best-first generation + hash-join execution equals
/// exhaustive generation + naive execution — the full pipeline differential.
#[test]
fn answers_pipeline_matches_exhaustive_naive_oracle() {
    let mut nonempty_cases = 0usize;
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31337));
        for case in 0..8 {
            let db = random_db(&mut rng);
            let index = InvertedIndex::build(&db);
            let catalog = TemplateCatalog::enumerate(&db, 3, 10_000).unwrap();
            let config = InterpreterConfig {
                prob: ProbabilityConfig {
                    unmapped_prob: 1e-4,
                    ..Default::default()
                },
                ..Default::default()
            };
            let fast = Interpreter::new(&db, &index, &catalog, config.clone());
            let oracle = Interpreter::new(
                &db,
                &index,
                &catalog,
                InterpreterConfig {
                    strategy: GenerationStrategy::Exhaustive,
                    ..config
                },
            );
            let query = random_query(&mut rng);
            let note = format!("seed {seed} case {case} query \"{query}\"");
            for k in [1, 4, 10] {
                let a = fast.answers_top_k(&query, k);
                let (b, _) = oracle.answers_top_k_with_opts(
                    &query,
                    k,
                    ExecOptions {
                        strategy: ExecStrategy::Naive,
                        ..Default::default()
                    },
                );
                assert_eq!(a.len(), b.len(), "{note} k={k}: answer count");
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.interpretation, y.interpretation,
                        "{note} k={k}: interpretation at answer {i}"
                    );
                    assert!(
                        (x.log_score - y.log_score).abs() < 1e-12,
                        "{note} k={k}: score at answer {i}"
                    );
                }
                // JTT order within one interpretation is strategy-defined;
                // compare key multisets.
                let mut ka: Vec<_> = a.iter().map(|x| x.keys.clone()).collect();
                let mut kb: Vec<_> = b.iter().map(|x| x.keys.clone()).collect();
                ka.sort();
                kb.sort();
                assert_eq!(ka, kb, "{note} k={k}: answer key multisets");
                if !a.is_empty() {
                    nonempty_cases += 1;
                }
            }
        }
    }
    assert!(
        nonempty_cases >= 12,
        "corpus too degenerate: {nonempty_cases}"
    );
}
